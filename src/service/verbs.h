// The verb layer: every rdfalign operation as a pure request/response
// function, shared verbatim by the `rdfalign` CLI and the `rdfalignd`
// daemon (the api redesign invariant: tools/*.cc hold no verb logic).
//
// Each verb is three pieces:
//
//   * ParseXRequest(Args, XRequest*, ParseError*)  — flag/positional
//     decoding with the exact legacy error messages (exit-2 contract),
//   * Status RunX(const XRequest&, XResponse*)     — the operation; file
//     graphs are obtained through the request's GraphSource (direct loads
//     in the CLI, the resident SnapshotCache in the daemon),
//   * XToJson / XToText(const XResponse&)          — the two renderings.
//     The JSON renderer is byte-identical to the historical CLI --json
//     output and doubles as the daemon's wire format.
//
// ExecuteVerb ties the three together for one tokenized command line —
// both front ends call it, so dispatch, error prefixes, and exit-code
// policy (usage/flag errors -> 2, patch base mismatch -> 2, other
// failures -> 1) cannot drift between them.

#ifndef RDFALIGN_SERVICE_VERBS_H_
#define RDFALIGN_SERVICE_VERBS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/aligner.h"
#include "core/archive.h"
#include "service/flags.h"
#include "service/graph_source.h"
#include "service/snapshot_cache.h"
#include "store/archive_io.h"
#include "store/delta.h"
#include "store/snapshot.h"
#include "util/result.h"

namespace rdfalign::service {

/// A failed request decode. `usage` selects the legacy presentation:
/// usage errors print the command synopsis (after `message`, when one is
/// set); plain errors print `message` alone. Both exit 2.
struct ParseError {
  bool usage = false;
  std::string message;
};

// ---------------------------------------------------------------- build

struct BuildRequest {
  std::string input;
  std::string output;
  std::string format = "auto";  ///< auto | ntriples | turtle
  CommonOptions common;
};

struct BuildResponse {
  std::string output;
  size_t nodes = 0;
  size_t triples = 0;
  double parse_ms = 0;
  double write_ms = 0;
  size_t threads = 0;  ///< resolved worker count
};

bool ParseBuildRequest(const Args& args, BuildRequest* req, ParseError* error);
Status RunBuild(const BuildRequest& req, BuildResponse* resp);
std::string BuildToJson(const BuildResponse& resp);
std::string BuildToText(const BuildResponse& resp);

// ----------------------------------------------------------------- info

struct InfoRequest {
  std::string path;
  /// Also report the content fingerprint (snapshot: GraphFingerprint of
  /// the loaded graph, via `source`; archive: fingerprint of the embedded
  /// base snapshot). Set for --json; the plain listing stays header-only.
  bool with_fingerprint = false;
  CommonOptions common;
  GraphSource* source = nullptr;
};

/// Header-level summary of a streaming update fragment
/// (store/update_fragment.h), reported by `info` on .rdfu files.
struct UpdateFragmentSummary {
  uint64_t sequence = 0;
  size_t refs = 0;
  size_t new_nodes = 0;
  size_t removed_nodes = 0;
  size_t removed_triples = 0;
  size_t added_triples = 0;
  uint64_t file_bytes = 0;
};

struct InfoResponse {
  std::string path;
  std::string kind;  ///< "snapshot" | "delta" | "archive" | "update"
  store::SnapshotInfo snapshot;  ///< valid when kind == "snapshot"
  store::DeltaInfo delta;        ///< valid when kind == "delta"
  store::ArchiveInfo archive;    ///< valid when kind == "archive"
  UpdateFragmentSummary update;  ///< valid when kind == "update"
  bool has_fingerprint = false;
  uint64_t fingerprint = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

bool ParseInfoRequest(const Args& args, InfoRequest* req, ParseError* error);
Status RunInfo(const InfoRequest& req, InfoResponse* resp);
std::string InfoToJson(const InfoResponse& resp);
std::string InfoToText(const InfoResponse& resp);

// ---------------------------------------------------------------- align

struct AlignRequest {
  std::string path_a;
  std::string path_b;
  AlignMethod method = AlignMethod::kHybrid;
  CommonOptions common;
  GraphSource* source = nullptr;
};

struct AlignResponse {
  AlignMethod method = AlignMethod::kHybrid;
  size_t threads = 0;
  std::string path_a, kind_a;
  std::string path_b, kind_b;
  size_t nodes_a = 0, triples_a = 0;
  size_t nodes_b = 0, triples_b = 0;
  double load_a_ms = 0, load_b_ms = 0;
  double seconds = 0;
  AlignPhaseTimings phases;
  EdgeAlignmentStats edge_stats;
  NodeAlignmentStats node_stats;
  RefinementStats refinement;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

bool ParseAlignRequest(const Args& args, AlignRequest* req, ParseError* error);
Status RunAlign(const AlignRequest& req, AlignResponse* resp);
std::string AlignToJson(const AlignResponse& resp);
std::string AlignToText(const AlignResponse& resp);

// ----------------------------------------------------------------- diff

struct DiffRequest {
  std::string path_base;
  std::string path_next;
  std::string path_out;
  AlignMethod method = AlignMethod::kHybrid;
  CommonOptions common;
  GraphSource* source = nullptr;
};

struct DiffResponse {
  AlignMethod method = AlignMethod::kHybrid;
  size_t threads = 0;
  std::string path_base, kind_base;
  std::string path_next, kind_next;
  std::string path_out;
  size_t nodes_base = 0, triples_base = 0;
  size_t nodes_next = 0, triples_next = 0;
  store::DeltaWriteStats stats;
  double align_ms = 0;
  double write_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

bool ParseDiffRequest(const Args& args, DiffRequest* req, ParseError* error);
Status RunDiff(const DiffRequest& req, DiffResponse* resp);
std::string DiffToJson(const DiffResponse& resp);
std::string DiffToText(const DiffResponse& resp);

// ---------------------------------------------------------------- patch

struct PatchRequest {
  std::string path_base;
  std::string path_delta;
  std::string path_out;
  CommonOptions common;
  GraphSource* source = nullptr;
};

struct PatchResponse {
  size_t threads = 0;
  std::string path_base, kind_base;
  std::string path_delta;
  std::string path_out;
  size_t nodes_base = 0, triples_base = 0;
  size_t nodes = 0, triples = 0;  ///< the reconstructed next version
  store::DeltaApplyStats stats;
  double load_ms = 0;
  double apply_ms = 0;
  double write_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

bool ParsePatchRequest(const Args& args, PatchRequest* req, ParseError* error);
Status RunPatch(const PatchRequest& req, PatchResponse* resp);
std::string PatchToJson(const PatchResponse& resp);
std::string PatchToText(const PatchResponse& resp);

// -------------------------------------------------------------- archive

struct ArchiveRequest {
  std::string path_out;
  std::vector<std::string> versions;
  AlignMethod method = AlignMethod::kHybrid;
  CommonOptions common;
  GraphSource* source = nullptr;
};

struct ArchiveResponse {
  AlignMethod method = AlignMethod::kHybrid;
  size_t threads = 0;
  std::string path_out;
  ArchiveStats stats;
  store::ArchiveSaveStats save_stats;
  double append_ms = 0;
  double save_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

bool ParseArchiveRequest(const Args& args, ArchiveRequest* req,
                         ParseError* error);
Status RunArchive(const ArchiveRequest& req, ArchiveResponse* resp);
std::string ArchiveToJson(const ArchiveResponse& resp);
std::string ArchiveToText(const ArchiveResponse& resp);

// ------------------------------------------------------------------ gen

struct GenRequest {
  std::string prefix;
  long long versions = 2;
  double scale = 1.0;
  long long seed = 5;
  CommonOptions common;
};

struct GenFileInfo {
  std::string path;
  size_t nodes = 0;
  size_t triples = 0;
};

struct GenResponse {
  std::string prefix;
  /// Files written so far — on failure the response still lists the
  /// versions that were written before the error (the CLI prints them,
  /// matching the historical streaming output).
  std::vector<GenFileInfo> files;
};

bool ParseGenRequest(const Args& args, GenRequest* req, ParseError* error);
Status RunGen(const GenRequest& req, GenResponse* resp);
std::string GenToJson(const GenResponse& resp);
std::string GenToText(const GenResponse& resp);

// ---------------------------------------------------------------- cache

struct CacheRequest {
  std::string action;  ///< "stats" | "clear"
  CommonOptions common;
  GraphSource* source = nullptr;
};

struct CacheResponse {
  std::string action;
  SnapshotCacheStats stats;  ///< after the action
  std::vector<SnapshotCacheEntryInfo> entries;  ///< "stats" only, MRU first
  uint64_t dropped_entries = 0;                 ///< "clear" only
};

bool ParseCacheRequest(const Args& args, CacheRequest* req, ParseError* error);
Status RunCache(const CacheRequest& req, CacheResponse* resp);
std::string CacheToJson(const CacheResponse& resp);
std::string CacheToText(const CacheResponse& resp);

// -------------------------------------------------------------- updates

/// `rdfalign updates <base> <next> <out.upd>`: the stateless producer for
/// the streaming pipeline — compute the label-addressed update fragment
/// (store/update_fragment.h, docs/stream.md) turning `base` into `next`.
struct UpdatesRequest {
  std::string path_base;
  std::string path_next;
  std::string path_out;
  long long sequence = 1;  ///< producer batch number (--seq)
  CommonOptions common;
  GraphSource* source = nullptr;
};

struct UpdatesResponse {
  std::string path_base, kind_base;
  std::string path_next, kind_next;
  std::string path_out;
  size_t nodes_base = 0, triples_base = 0;
  size_t nodes_next = 0, triples_next = 0;
  uint64_t refs = 0;             ///< node references declared
  uint64_t new_nodes = 0;        ///< nodes created by the batch
  uint64_t removed_nodes = 0;    ///< nodes retired by the batch
  uint64_t removed_triples = 0;
  uint64_t added_triples = 0;
  uint64_t sequence = 0;
  uint64_t file_bytes = 0;
  double build_ms = 0;
  double write_ms = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

bool ParseUpdatesRequest(const Args& args, UpdatesRequest* req,
                         ParseError* error);
Status RunUpdates(const UpdatesRequest& req, UpdatesResponse* resp);
std::string UpdatesToJson(const UpdatesResponse& resp);
std::string UpdatesToText(const UpdatesResponse& resp);

// ------------------------------------------------------------- dispatch

/// The outcome of one verb execution, transport-agnostic: the CLI prints
/// `output` to stdout, `error` (plus the usage synopsis when
/// `usage_error`) to stderr, and exits with `exit_code`; the daemon wraps
/// the same fields into its JSON response envelope.
struct VerbResult {
  int exit_code = 0;
  bool usage_error = false;
  std::string verb;
  std::string output;  ///< rendered response body
  std::string error;   ///< failure message (no trailing newline)
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// Decodes `tokens` (verb first), runs it against `source`, renders the
/// response. `force_json` renders JSON regardless of --json; both front
/// ends pass false, so the daemon's body follows the forwarded --json
/// flag and stays byte-identical to the one-shot CLI.
VerbResult ExecuteVerb(const std::vector<std::string>& tokens,
                       GraphSource* source, bool force_json);

/// The command synopsis (the historical Usage() text).
const char* UsageText();

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_VERBS_H_
