#include "service/snapshot_cache.h"

#include <sys/stat.h>

#include <utility>

#include "util/timer.h"

namespace rdfalign::service {

namespace {

Status StatFile(const std::string& path, uint64_t* size, int64_t* mtime_ns) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::NotFound("cannot stat: " + path);
  }
  *size = static_cast<uint64_t>(st.st_size);
  *mtime_ns = static_cast<int64_t>(st.st_mtim.tv_sec) * 1000000000 +
              st.st_mtim.tv_nsec;
  return Status::OK();
}

}  // namespace

SnapshotCache::SnapshotCache(const SnapshotCacheOptions& options)
    : options_(options) {}

Result<AcquiredGraph> SnapshotCache::Acquire(const std::string& path,
                                             const CommonOptions& common,
                                             bool /*need_fingerprint*/) {
  WallTimer timer;
  uint64_t file_size = 0;
  int64_t mtime_ns = 0;
  RDFALIGN_RETURN_IF_ERROR(StatFile(path, &file_size, &mtime_ns));

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto pit = by_path_.find(path);
    if (pit != by_path_.end() && pit->second.file_size == file_size &&
        pit->second.mtime_ns == mtime_ns) {
      auto eit = by_fingerprint_.find(pit->second.fingerprint);
      if (eit != by_fingerprint_.end()) {
        lru_.erase(eit->second.lru_it);
        lru_.push_front(eit->first);
        eit->second.lru_it = lru_.begin();
        ++hits_;
        AcquiredGraph out;
        out.loaded = eit->second.loaded;
        out.cache_hit = true;
        out.acquire_ms = timer.ElapsedMillis();
        return out;
      }
      // Path index pointed at an evicted entry; fall through to load.
    }
  }

  // Miss: load outside the lock (the fingerprint is always computed —
  // it is the key).
  RDFALIGN_ASSIGN_OR_RETURN(LoadedGraphRef loaded,
                            LoadGraphFile(path, common, true));

  AcquiredGraph out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++misses_;
    by_path_[path] =
        PathKey{file_size, mtime_ns, loaded->fingerprint};
    auto eit = by_fingerprint_.find(loaded->fingerprint);
    if (eit != by_fingerprint_.end()) {
      // Same content already resident (another path, or a concurrent
      // load of the same path won the race): adopt it, drop our copy.
      ++duplicate_loads_;
      lru_.erase(eit->second.lru_it);
      lru_.push_front(eit->first);
      eit->second.lru_it = lru_.begin();
      out.loaded = eit->second.loaded;
    } else {
      lru_.push_front(loaded->fingerprint);
      Entry entry;
      entry.loaded = loaded;
      entry.first_path = path;
      entry.lru_it = lru_.begin();
      resident_bytes_ += loaded->resident_bytes;
      by_fingerprint_.emplace(loaded->fingerprint, std::move(entry));
      EvictToCapacityLocked();
      out.loaded = std::move(loaded);
    }
  }
  out.cache_hit = false;
  out.acquire_ms = timer.ElapsedMillis();
  return out;
}

void SnapshotCache::EvictToCapacityLocked() {
  while (resident_bytes_ > options_.capacity_bytes && !lru_.empty()) {
    const uint64_t victim = lru_.back();
    auto it = by_fingerprint_.find(victim);
    resident_bytes_ -= it->second.loaded->resident_bytes;
    by_fingerprint_.erase(it);
    lru_.pop_back();
    ++evictions_;
  }
}

SnapshotCacheStats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SnapshotCacheStats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.duplicate_loads = duplicate_loads_;
  s.entries = by_fingerprint_.size();
  s.resident_bytes = resident_bytes_;
  s.capacity_bytes = options_.capacity_bytes;
  return s;
}

std::vector<SnapshotCacheEntryInfo> SnapshotCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotCacheEntryInfo> out;
  out.reserve(by_fingerprint_.size());
  for (uint64_t fp : lru_) {
    const Entry& e = by_fingerprint_.at(fp);
    SnapshotCacheEntryInfo info;
    info.fingerprint = fp;
    info.resident_bytes = e.loaded->resident_bytes;
    // One reference is the cache's own; anything beyond it is an
    // in-flight request or a rebound graph pinning the entry.
    const long uses = e.loaded.use_count();
    info.external_refs = uses > 1 ? static_cast<uint64_t>(uses - 1) : 0;
    info.path = e.first_path;
    info.nodes = e.loaded->graph.NumNodes();
    info.triples = e.loaded->graph.NumEdges();
    out.push_back(std::move(info));
  }
  return out;
}

void SnapshotCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  evictions_ += by_fingerprint_.size();
  by_fingerprint_.clear();
  by_path_.clear();
  lru_.clear();
  resident_bytes_ = 0;
}

}  // namespace rdfalign::service
