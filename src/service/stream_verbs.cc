#include "service/stream_verbs.h"

#include <utility>

#include "rdf/term.h"
#include "service/graph_source.h"
#include "service/json.h"
#include "service/session_registry.h"
#include "store/update_fragment.h"

namespace rdfalign::service {

namespace {

Result<AlignMethod> ParseStreamMethod(const std::string& name) {
  if (name == "trivial") return AlignMethod::kTrivial;
  if (name == "deblank") return AlignMethod::kDeblank;
  return Status::InvalidArgument(
      "unknown streaming method: " + name +
      " (streaming supports trivial and deblank; see docs/stream.md)");
}

VerbResult PlainFailure(int exit_code, std::string message) {
  VerbResult result;
  result.verb = "stream";
  result.exit_code = exit_code;
  result.error = std::move(message);
  return result;
}

VerbResult UsageFailure(std::string message) {
  VerbResult result;
  result.verb = "stream";
  result.exit_code = 2;
  result.usage_error = true;
  result.error = std::move(message);
  return result;
}

void AppendPairsJson(JsonBuf* b, const char* key,
                     const std::vector<stream::LabeledPair>& pairs,
                     bool trailing_comma) {
  b->Appendf("  \"%s\": [\n", key);
  for (size_t i = 0; i < pairs.size(); ++i) {
    const stream::LabeledPair& p = pairs[i];
    b->Appendf(
        "    {\"src\": \"%s\", \"src_kind\": \"%s\", \"tgt\": \"%s\", "
        "\"tgt_kind\": \"%s\"}%s\n",
        JsonEscape(p.src_lex).c_str(),
        std::string(TermKindToString(p.src_kind)).c_str(),
        JsonEscape(p.tgt_lex).c_str(),
        std::string(TermKindToString(p.tgt_kind)).c_str(),
        i + 1 < pairs.size() ? "," : "");
  }
  b->Appendf("  ]%s\n", trailing_comma ? "," : "");
}

void AppendPairsText(JsonBuf* b, char sign,
                     const std::vector<stream::LabeledPair>& pairs) {
  for (const stream::LabeledPair& p : pairs) {
    b->Appendf("  %c %s ~ %s\n", sign, p.src_lex.c_str(), p.tgt_lex.c_str());
  }
}

std::string OpenToJson(const StreamSession& s) {
  const stream::StreamAligner& a = *s.aligner;
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"stream\": \"open\",\n");
  b.Appendf("  \"session\": \"%s\",\n", JsonEscape(s.token).c_str());
  b.Appendf("  \"source\": \"%s\",\n", JsonEscape(s.source_path).c_str());
  b.Appendf("  \"target\": \"%s\",\n", JsonEscape(s.target_path).c_str());
  b.Appendf("  \"method\": \"%s\",\n",
            std::string(AlignMethodToString(s.method)).c_str());
  b.Appendf("  \"threads\": %zu,\n", a.options().threads);
  b.Appendf("  \"source_nodes\": %u,\n", a.graph().n1());
  b.Appendf("  \"live_nodes\": %zu,\n", a.graph().NumLiveNodes());
  b.Appendf("  \"target_triples\": %zu,\n", a.graph().NumTargetTriples());
  b.Appendf("  \"iterations\": %zu,\n", a.open_stats().iterations);
  b.Appendf("  \"classes\": %zu,\n", a.open_stats().final_classes);
  b.Appendf("  \"pairs\": %zu\n", a.CurrentPairs().size());
  b.Appendf("}\n");
  return b.Take();
}

std::string OpenToText(const StreamSession& s) {
  const stream::StreamAligner& a = *s.aligner;
  JsonBuf b;
  b.Appendf(
      "stream open %s ~ %s (%s): %u source nodes, %zu live nodes, "
      "%zu target triples\n",
      s.source_path.c_str(), s.target_path.c_str(),
      std::string(AlignMethodToString(s.method)).c_str(), a.graph().n1(),
      a.graph().NumLiveNodes(), a.graph().NumTargetTriples());
  b.Appendf("  initial fixpoint: %zu iterations, %zu classes, %zu pairs\n",
            a.open_stats().iterations, a.open_stats().final_classes,
            a.CurrentPairs().size());
  b.Appendf("  session: %s\n", s.token.c_str());
  return b.Take();
}

std::string ResumeToJson(const StreamSession& s) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"stream\": \"resume\",\n");
  b.Appendf("  \"session\": \"%s\",\n", JsonEscape(s.token).c_str());
  b.Appendf("  \"source\": \"%s\",\n", JsonEscape(s.source_path).c_str());
  b.Appendf("  \"target\": \"%s\",\n", JsonEscape(s.target_path).c_str());
  b.Appendf("  \"fragments\": %llu,\n", (unsigned long long)s.fragments);
  b.Appendf("  \"last_sequence\": %llu\n", (unsigned long long)s.last_seq);
  b.Appendf("}\n");
  return b.Take();
}

std::string ResumeToText(const StreamSession& s) {
  JsonBuf b;
  b.Appendf(
      "stream resumed %s ~ %s: %llu fragments applied, last sequence %llu\n",
      s.source_path.c_str(), s.target_path.c_str(),
      (unsigned long long)s.fragments, (unsigned long long)s.last_seq);
  return b.Take();
}

std::string PushToJson(const stream::StreamBatchResult& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"stream\": \"push\",\n");
  b.Appendf("  \"sequence\": %llu,\n", (unsigned long long)r.sequence);
  b.Appendf("  \"applied_adds\": %zu,\n", r.applied_adds);
  b.Appendf("  \"ignored_adds\": %zu,\n", r.ignored_adds);
  b.Appendf("  \"applied_removes\": %zu,\n", r.applied_removes);
  b.Appendf("  \"ignored_removes\": %zu,\n", r.ignored_removes);
  b.Appendf("  \"new_nodes\": %zu,\n", r.new_nodes);
  b.Appendf("  \"removed_nodes\": %zu,\n", r.removed_nodes);
  b.Appendf("  \"refined\": %s,\n", r.refined ? "true" : "false");
  b.Appendf("  \"iterations\": %zu,\n", r.iterations);
  b.Appendf("  \"dirty_total\": %zu,\n", r.dirty_total);
  AppendPairsJson(&b, "removed_pairs", r.removed_pairs, true);
  AppendPairsJson(&b, "added_pairs", r.added_pairs, true);
  b.Appendf("  \"apply_ms\": %.3f,\n", r.apply_ms);
  b.Appendf("  \"refine_ms\": %.3f,\n", r.refine_ms);
  b.Appendf("  \"delta_ms\": %.3f\n", r.delta_ms);
  b.Appendf("}\n");
  return b.Take();
}

std::string PushToText(const stream::StreamBatchResult& r) {
  JsonBuf b;
  b.Appendf(
      "applied update #%llu: +%zu -%zu triples (%zu ignored), "
      "+%zu -%zu nodes\n",
      (unsigned long long)r.sequence, r.applied_adds, r.applied_removes,
      r.ignored_adds + r.ignored_removes, r.new_nodes, r.removed_nodes);
  if (r.refined) {
    b.Appendf("  refined: %zu iterations, %zu re-signings\n", r.iterations,
              r.dirty_total);
  } else {
    b.Appendf("  refined: no (no blank class affected)\n");
  }
  b.Appendf("  alignment delta: -%zu +%zu pairs\n", r.removed_pairs.size(),
            r.added_pairs.size());
  AppendPairsText(&b, '-', r.removed_pairs);
  AppendPairsText(&b, '+', r.added_pairs);
  return b.Take();
}

std::string CheckToJson(const stream::StreamCheckResult& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"stream\": \"check\",\n");
  b.Appendf("  \"equivalent\": true,\n");
  b.Appendf("  \"live_nodes\": %zu,\n", r.live_nodes);
  b.Appendf("  \"classes\": %zu\n", r.classes);
  b.Appendf("}\n");
  return b.Take();
}

std::string StatsToJson(const StreamSession& s) {
  const stream::StreamAligner& a = *s.aligner;
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"stream\": \"stats\",\n");
  b.Appendf("  \"source\": \"%s\",\n", JsonEscape(s.source_path).c_str());
  b.Appendf("  \"target\": \"%s\",\n", JsonEscape(s.target_path).c_str());
  b.Appendf("  \"method\": \"%s\",\n",
            std::string(AlignMethodToString(s.method)).c_str());
  b.Appendf("  \"fragments\": %llu,\n", (unsigned long long)s.fragments);
  b.Appendf("  \"live_nodes\": %zu,\n", a.graph().NumLiveNodes());
  b.Appendf("  \"target_triples\": %zu,\n", a.graph().NumTargetTriples());
  b.Appendf("  \"colors_allocated\": %zu,\n", a.NumColorsAllocated());
  b.Appendf("  \"pairs_added_total\": %llu,\n",
            (unsigned long long)s.pairs_added_total);
  b.Appendf("  \"pairs_removed_total\": %llu\n",
            (unsigned long long)s.pairs_removed_total);
  b.Appendf("}\n");
  return b.Take();
}

std::string StatsToText(const StreamSession& s) {
  const stream::StreamAligner& a = *s.aligner;
  JsonBuf b;
  b.Appendf(
      "stream session %s ~ %s (%s): %llu fragments, %zu live nodes, "
      "%zu target triples\n",
      s.source_path.c_str(), s.target_path.c_str(),
      std::string(AlignMethodToString(s.method)).c_str(),
      (unsigned long long)s.fragments, a.graph().NumLiveNodes(),
      a.graph().NumTargetTriples());
  b.Appendf("  pair deltas emitted: +%llu -%llu\n",
            (unsigned long long)s.pairs_added_total,
            (unsigned long long)s.pairs_removed_total);
  return b.Take();
}

}  // namespace

VerbResult HandleStreamVerb(const std::vector<std::string>& tokens,
                            const std::string& fragment,
                            std::unique_ptr<StreamSession>* session,
                            GraphSource* source,
                            StreamSessionRegistry* registry) {
  if (tokens.size() < 2) {
    return UsageFailure(
        "rdfalign stream: expected a subcommand "
        "(open|push|resume|check|stats|close)");
  }
  const std::string& sub = tokens[1];
  const Args args(std::vector<std::string>(tokens.begin() + 2, tokens.end()));
  VerbResult result;
  result.verb = "stream";
  std::string message;

  if (sub == "open") {
    if (*session != nullptr) {
      return PlainFailure(
          1, "rdfalign stream: a session is already open on this connection");
    }
    if (args.positional().size() != 2) {
      return UsageFailure(
          "rdfalign stream: open expects <source> <target>");
    }
    if (!args.OnlyKnown(
            {"method", "threads", "mmap", "json", "no-verify-checksums"},
            &message)) {
      return UsageFailure(message);
    }
    auto sess = std::make_unique<StreamSession>();
    sess->source_path = args.positional()[0];
    sess->target_path = args.positional()[1];
    auto method = ParseStreamMethod(args.GetString("method", "deblank"));
    if (!method.ok()) {
      return PlainFailure(
          2, "rdfalign stream: " + method.status().ToString());
    }
    sess->method = *method;
    if (!ParseCommonFlags(args, "stream", &sess->common, &message)) {
      return PlainFailure(2, message);
    }

    // Both versions into one label space, exactly like RunAlign: acquire
    // (possibly cache-resident) and rebind into a fresh shared dictionary.
    auto dict = std::make_shared<Dictionary>();
    auto acquire = [&](const std::string& path,
                       TripleGraph* out) -> Status {
      Result<AcquiredGraph> g = source->Acquire(path, sess->common, false);
      RDFALIGN_RETURN_IF_ERROR(g.status());
      if (g->cache_hit) {
        ++result.cache_hits;
      } else {
        ++result.cache_misses;
      }
      *out = RebindGraph(g->loaded, dict);
      return Status::OK();
    };
    TripleGraph src, tgt;
    Status st = acquire(sess->source_path, &src);
    if (st.ok()) st = acquire(sess->target_path, &tgt);
    if (!st.ok()) {
      return PlainFailure(1, "rdfalign stream: " + st.ToString());
    }

    stream::StreamOptions options;
    options.method = sess->method;
    options.threads = sess->common.threads;
    Result<std::unique_ptr<stream::StreamAligner>> aligner =
        stream::StreamAligner::Open(src, tgt, options);
    if (!aligner.ok()) {
      return PlainFailure(
          1, "rdfalign stream: " + aligner.status().ToString());
    }
    sess->aligner = std::move(*aligner);
    sess->token = GenerateSessionToken();
    result.output =
        sess->common.json ? OpenToJson(*sess) : OpenToText(*sess);
    *session = std::move(sess);
    return result;
  }

  if (sub == "resume") {
    if (*session != nullptr) {
      return PlainFailure(
          1, "rdfalign stream: a session is already open on this connection");
    }
    if (args.positional().size() != 1 ||
        !args.OnlyKnown({"json"}, &message)) {
      return UsageFailure(message.empty()
                              ? "rdfalign stream: resume expects <token>"
                              : message);
    }
    const std::string& token = args.positional()[0];
    std::unique_ptr<StreamSession> claimed =
        registry != nullptr ? registry->Claim(token) : nullptr;
    if (claimed == nullptr) {
      return PlainFailure(
          1, "rdfalign stream: no resumable session for token " + token +
                 " (expired, already resumed, or never parked)");
    }
    result.output =
        args.Has("json") ? ResumeToJson(*claimed) : ResumeToText(*claimed);
    *session = std::move(claimed);
    return result;
  }

  if (*session == nullptr) {
    return PlainFailure(1,
                        "rdfalign stream: no open session on this "
                        "connection (run `stream open` first)");
  }
  StreamSession& sess = **session;

  if (sub == "push") {
    if (!args.positional().empty() || !args.OnlyKnown({"json"}, &message)) {
      return UsageFailure(message);
    }
    Result<store::UpdateBatch> batch =
        store::DecodeUpdateBatch(fragment, "stream push");
    if (!batch.ok()) {
      return PlainFailure(1,
                          "rdfalign stream: " + batch.status().ToString());
    }
    // Reconnect replay: a numbered fragment the session already applied
    // (client re-pushing after a lost response) is NOT applied twice; the
    // original rendered response is replayed bit-identically.
    const uint64_t seq = batch->sequence;
    if (seq != 0 && sess.last_seq != 0 && seq <= sess.last_seq) {
      auto cached = sess.replay.find(seq);
      if (cached == sess.replay.end()) {
        return PlainFailure(
            1, "rdfalign stream: sequence " + std::to_string(seq) +
                   " was already applied and its response is no longer "
                   "cached (replay window is " +
                   std::to_string(StreamSession::kReplayWindow) +
                   " fragments)");
      }
      result.output = cached->second;
      return result;
    }
    Result<stream::StreamBatchResult> r = sess.aligner->Apply(*batch);
    if (!r.ok()) {
      // An apply error leaves the aligner partially updated; the session
      // is unusable and is closed so the client cannot keep pushing.
      const std::string detail = r.status().ToString();
      session->reset();
      return PlainFailure(
          1, "rdfalign stream: " + detail + " (session closed)");
    }
    ++sess.fragments;
    sess.pairs_added_total += r->added_pairs.size();
    sess.pairs_removed_total += r->removed_pairs.size();
    result.output = args.Has("json") ? PushToJson(*r) : PushToText(*r);
    if (seq != 0) {
      if (seq > sess.last_seq) sess.last_seq = seq;
      sess.replay[seq] = result.output;
      while (sess.replay.size() > StreamSession::kReplayWindow) {
        sess.replay.erase(sess.replay.begin());
      }
    }
    return result;
  }

  if (sub == "check") {
    if (args.positional().size() != 1 ||
        !args.OnlyKnown({"json", "threads", "mmap", "no-verify-checksums"},
                        &message)) {
      return UsageFailure(message.empty()
                              ? "rdfalign stream: check expects "
                                "<final-target>"
                              : message);
    }
    CommonOptions common = sess.common;
    if (!ParseCommonFlags(args, "stream", &common, &message)) {
      return PlainFailure(2, message);
    }
    auto dict = std::make_shared<Dictionary>();
    auto acquire = [&](const std::string& path,
                       TripleGraph* out) -> Status {
      Result<AcquiredGraph> g = source->Acquire(path, common, false);
      RDFALIGN_RETURN_IF_ERROR(g.status());
      if (g->cache_hit) {
        ++result.cache_hits;
      } else {
        ++result.cache_misses;
      }
      *out = RebindGraph(g->loaded, dict);
      return Status::OK();
    };
    TripleGraph src, fin;
    Status st = acquire(sess.source_path, &src);
    if (st.ok()) st = acquire(args.positional()[0], &fin);
    if (!st.ok()) {
      return PlainFailure(1, "rdfalign stream: " + st.ToString());
    }
    Result<stream::StreamCheckResult> check =
        sess.aligner->CheckBatchEquivalence(src, fin);
    if (!check.ok()) {
      return PlainFailure(1,
                          "rdfalign stream: " + check.status().ToString());
    }
    if (common.json) {
      result.output = CheckToJson(*check);
    } else {
      JsonBuf b;
      b.Appendf(
          "stream check: equivalent to the batch alignment "
          "(%zu live nodes, %zu classes)\n",
          check->live_nodes, check->classes);
      result.output = b.Take();
    }
    return result;
  }

  if (sub == "stats") {
    if (!args.positional().empty() || !args.OnlyKnown({"json"}, &message)) {
      return UsageFailure(message);
    }
    result.output = args.Has("json") ? StatsToJson(sess) : StatsToText(sess);
    return result;
  }

  if (sub == "close") {
    if (!args.positional().empty() || !args.OnlyKnown({"json"}, &message)) {
      return UsageFailure(message);
    }
    if (args.Has("json")) {
      JsonBuf b;
      b.Appendf("{\n");
      b.Appendf("  \"stream\": \"close\",\n");
      b.Appendf("  \"fragments\": %llu,\n",
                (unsigned long long)sess.fragments);
      b.Appendf("  \"pairs_added_total\": %llu,\n",
                (unsigned long long)sess.pairs_added_total);
      b.Appendf("  \"pairs_removed_total\": %llu\n",
                (unsigned long long)sess.pairs_removed_total);
      b.Appendf("}\n");
      result.output = b.Take();
    } else {
      JsonBuf b;
      b.Appendf("stream closed after %llu fragments (+%llu -%llu pairs)\n",
                (unsigned long long)sess.fragments,
                (unsigned long long)sess.pairs_added_total,
                (unsigned long long)sess.pairs_removed_total);
      result.output = b.Take();
    }
    session->reset();
    return result;
  }

  return UsageFailure("rdfalign stream: unknown subcommand '" + sub +
                      "' (expected open|push|resume|check|stats|close)");
}

}  // namespace rdfalign::service
