#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "service/json.h"
#include "service/protocol.h"
#include "service/stream_verbs.h"
#include "service/verbs.h"
#include "util/timer.h"

namespace rdfalign::service {

namespace {

/// Frame 1 of every response (see protocol.h). The body travels as its
/// own frame so it stays byte-identical to the CLI rendering.
std::string BuildEnvelope(const VerbResult& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"ok\": %s,\n", r.exit_code == 0 ? "true" : "false");
  b.Appendf("  \"verb\": \"%s\",\n", JsonEscape(r.verb).c_str());
  b.Appendf("  \"exit_code\": %d,\n", r.exit_code);
  b.Appendf("  \"usage_error\": %s,\n", r.usage_error ? "true" : "false");
  b.Appendf("  \"cache_hits\": %llu,\n", (unsigned long long)r.cache_hits);
  b.Appendf("  \"cache_misses\": %llu", (unsigned long long)r.cache_misses);
  if (!r.error.empty()) {
    b.Appendf(",\n  \"error\": \"%s\"", JsonEscape(r.error).c_str());
  }
  b.Appendf("\n}\n");
  return b.Take();
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(SnapshotCacheOptions{options.cache_bytes}) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = std::string("bind ") + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message =
        std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(message);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  running_ = true;
  draining_ = false;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  const size_t workers =
      options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  return Status::OK();
}

void Server::ReapExpiredSessions() {
  size_t reaped = sessions_.ReapExpired(SteadyNowMs());
  while (reaped-- > 0) metrics_.Bump(&TransportCounters::sessions_expired);
}

/// Over the connection cap: answers with a clean load-shed error so the
/// client fails fast with a message instead of a hang or a reset, then
/// closes. Runs on the accept thread, so the write gets a short deadline
/// of its own — a malicious peer must not stall accepting.
bool Server::ShouldShed(int fd) {
  if (options_.max_conns == 0) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (connections_.size() < options_.max_conns) return false;
  }
  metrics_.Bump(&TransportCounters::load_shed);
  VerbResult shed;
  shed.verb = "(overload)";
  shed.exit_code = 1;
  shed.error = "server is at its connection limit (--max-conns " +
               std::to_string(options_.max_conns) + "); retry later";
  (void)WriteFrame(fd, BuildEnvelope(shed), 1000);
  (void)WriteFrame(fd, "", 1000);
  ::close(fd);
  return true;
}

void Server::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // The peer aborted between SYN and accept: nothing to serve,
      // nothing wrong with the listener.
      if (errno == ECONNABORTED) continue;
      // Resource exhaustion (fd table or kernel memory) is transient:
      // back off briefly so in-flight connections can close and free
      // resources, then keep accepting. Exiting here would turn a burst
      // of load into a permanently deaf daemon.
      if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
          errno == ENOMEM) {
        metrics_.Bump(&TransportCounters::accept_retries);
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      return;  // listener closed (Stop) or fatal error
    }
    ReapExpiredSessions();
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (ShouldShed(fd)) continue;
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    connections_.insert(fd);
    queue_cv_.notify_one();
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return draining_ || !pending_.empty(); });
      if (pending_.empty()) return;  // draining, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.erase(fd);
      drain_cv_.notify_all();
    }
    ::close(fd);
  }
}

void Server::ServeConnection(int fd) {
  const int timeout = static_cast<int>(options_.io_timeout_ms);
  std::string payload;
  // The connection's streaming-alignment session, if any (stream_verbs.h).
  // Owned here so a dropped connection always releases its aligner — or,
  // with --session-linger-ms, parks it for `stream resume` (below).
  std::unique_ptr<StreamSession> stream_session;
  // A failed frame I/O never crashes the worker: it ends this connection
  // and shows up in the transport counters.
  auto transport_error = [&](const Status& st) {
    metrics_.Bump(IsTimeout(st) ? &TransportCounters::io_timeouts
                                : &TransportCounters::protocol_errors);
  };
  while (true) {
    Result<bool> more = ReadFrame(fd, &payload, timeout);
    if (!more.ok()) {
      transport_error(more.status());
      break;
    }
    if (!*more) break;  // clean EOF at a frame boundary
    const std::vector<std::string> tokens = DecodeRequest(payload);
    ReapExpiredSessions();
    WallTimer timer;
    VerbResult result;
    if (!tokens.empty() && tokens[0] == "stream") {
      // `stream push` is the one request that carries a payload: ONE
      // extra frame holding the binary update fragment.
      std::string fragment;
      if (tokens.size() >= 2 && tokens[1] == "push") {
        Result<bool> have = ReadFrame(fd, &fragment, timeout);
        if (!have.ok()) {
          transport_error(have.status());
          break;
        }
        if (!*have) {
          // EOF where the protocol promised a payload frame.
          metrics_.Bump(&TransportCounters::protocol_errors);
          break;
        }
      }
      result = HandleStreamVerb(tokens, fragment, &stream_session, &cache_,
                                &sessions_);
      if (tokens.size() >= 2 && tokens[1] == "resume" &&
          result.exit_code == 0) {
        metrics_.Bump(&TransportCounters::sessions_resumed);
      }
    } else if (!tokens.empty() && tokens[0] == "stats") {
      result = HandleStatsVerb(tokens, metrics_);
    } else {
      result = ExecuteVerb(tokens, &cache_, false);
    }
    metrics_.Record(tokens.empty() ? "(empty)" : tokens[0],
                    result.exit_code != 0, timer.ElapsedMillis());
    Status sent = WriteFrame(fd, BuildEnvelope(result), timeout);
    if (sent.ok()) sent = WriteFrame(fd, result.output, timeout);
    if (!sent.ok()) {
      transport_error(sent);
      break;
    }
  }
  // Park a live stream session for later resume — unless linger is off or
  // the server is draining (a parked session would never be claimable).
  if (stream_session != nullptr && options_.session_linger_ms > 0) {
    bool draining;
    {
      std::lock_guard<std::mutex> lock(mu_);
      draining = draining_;
    }
    if (!draining &&
        sessions_.Park(std::move(stream_session),
                       SteadyNowMs() +
                           static_cast<int64_t>(options_.session_linger_ms))) {
      metrics_.Bump(&TransportCounters::sessions_parked);
    }
  }
}

void Server::Stop() {
  if (!running_) return;
  running_ = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  // shutdown() unblocks the accept() the listener thread is parked in;
  // the fd itself is closed only after the join, so the thread never
  // reads listen_fd_ concurrently with the teardown writes below.
  ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Drain phase: connected clients — including idle connections and open
  // stream sessions — keep being served until they hang up. Workers pull
  // any still-queued fds first (the wait predicate holds while pending_
  // is non-empty), so a connection accepted just before the listener
  // closed is served, not dropped.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_ms),
                       [this] { return connections_.empty(); });
    // Deadline expired (or everyone already left): force the remaining
    // connections shut at their next frame boundary. A worker busy
    // executing a request still finishes it and delivers the response.
    for (int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Workers exit only when pending_ is empty, so any fd left here was
  // accepted but never served (cannot happen after a full drain; kept as
  // a belt against future reorderings).
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  connections_.clear();
}

}  // namespace rdfalign::service
