#include "service/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "service/json.h"
#include "service/protocol.h"
#include "service/stream_verbs.h"
#include "service/verbs.h"
#include "util/timer.h"

namespace rdfalign::service {

namespace {

/// Frame 1 of every response (see protocol.h). The body travels as its
/// own frame so it stays byte-identical to the CLI rendering.
std::string BuildEnvelope(const VerbResult& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"ok\": %s,\n", r.exit_code == 0 ? "true" : "false");
  b.Appendf("  \"verb\": \"%s\",\n", JsonEscape(r.verb).c_str());
  b.Appendf("  \"exit_code\": %d,\n", r.exit_code);
  b.Appendf("  \"usage_error\": %s,\n", r.usage_error ? "true" : "false");
  b.Appendf("  \"cache_hits\": %llu,\n", (unsigned long long)r.cache_hits);
  b.Appendf("  \"cache_misses\": %llu", (unsigned long long)r.cache_misses);
  if (!r.error.empty()) {
    b.Appendf(",\n  \"error\": \"%s\"", JsonEscape(r.error).c_str());
  }
  b.Appendf("\n}\n");
  return b.Take();
}

}  // namespace

Server::Server(const ServerOptions& options)
    : options_(options),
      cache_(SnapshotCacheOptions{options.cache_bytes}) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad listen address: " + options_.host);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string message = std::string("bind ") + options_.host + ":" +
                                std::to_string(options_.port) + ": " +
                                std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(message);
  }
  if (::listen(listen_fd_, 64) != 0) {
    const std::string message =
        std::string("listen: ") + std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(message);
  }
  sockaddr_in bound;
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  running_ = true;
  draining_ = false;
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
  const size_t workers =
      options_.worker_threads > 0 ? options_.worker_threads : 1;
  workers_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    workers_.emplace_back(&Server::WorkerLoop, this);
  }
  return Status::OK();
}

void Server::AcceptLoop() {
  while (true) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed (Stop) or fatal error
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      ::close(fd);
      return;
    }
    pending_.push_back(fd);
    connections_.insert(fd);
    queue_cv_.notify_one();
  }
}

void Server::WorkerLoop() {
  while (true) {
    int fd = -1;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait(lock, [this] { return draining_ || !pending_.empty(); });
      if (pending_.empty()) return;  // draining, queue drained
      fd = pending_.front();
      pending_.pop_front();
    }
    ServeConnection(fd);
    {
      std::lock_guard<std::mutex> lock(mu_);
      connections_.erase(fd);
      drain_cv_.notify_all();
    }
    ::close(fd);
  }
}

void Server::ServeConnection(int fd) {
  std::string payload;
  // The connection's streaming-alignment session, if any (stream_verbs.h).
  // Owned here so a dropped connection always releases its aligner.
  std::unique_ptr<StreamSession> stream_session;
  while (true) {
    Result<bool> more = ReadFrame(fd, &payload);
    if (!more.ok() || !*more) return;  // EOF or broken connection
    const std::vector<std::string> tokens = DecodeRequest(payload);
    WallTimer timer;
    VerbResult result;
    if (!tokens.empty() && tokens[0] == "stream") {
      // `stream push` is the one request that carries a payload: ONE
      // extra frame holding the binary update fragment.
      std::string fragment;
      if (tokens.size() >= 2 && tokens[1] == "push") {
        Result<bool> have = ReadFrame(fd, &fragment);
        if (!have.ok() || !*have) return;
      }
      result = HandleStreamVerb(tokens, fragment, &stream_session, &cache_);
    } else if (!tokens.empty() && tokens[0] == "stats") {
      result = HandleStatsVerb(tokens, metrics_);
    } else {
      result = ExecuteVerb(tokens, &cache_, false);
    }
    metrics_.Record(tokens.empty() ? "(empty)" : tokens[0],
                    result.exit_code != 0, timer.ElapsedMillis());
    if (!WriteFrame(fd, BuildEnvelope(result)).ok()) return;
    if (!WriteFrame(fd, result.output).ok()) return;
  }
}

void Server::Stop() {
  if (!running_) return;
  running_ = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  // shutdown() unblocks the accept() the listener thread is parked in;
  // the fd itself is closed only after the join, so the thread never
  // reads listen_fd_ concurrently with the teardown writes below.
  ::shutdown(listen_fd_, SHUT_RDWR);
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  // Drain phase: connected clients — including idle connections and open
  // stream sessions — keep being served until they hang up. Workers pull
  // any still-queued fds first (the wait predicate holds while pending_
  // is non-empty), so a connection accepted just before the listener
  // closed is served, not dropped.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(options_.drain_ms),
                       [this] { return connections_.empty(); });
    // Deadline expired (or everyone already left): force the remaining
    // connections shut at their next frame boundary. A worker busy
    // executing a request still finishes it and delivers the response.
    for (int fd : connections_) ::shutdown(fd, SHUT_RD);
  }
  queue_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  workers_.clear();
  // Workers exit only when pending_ is empty, so any fd left here was
  // accepted but never served (cannot happen after a full drain; kept as
  // a belt against future reorderings).
  for (int fd : pending_) ::close(fd);
  pending_.clear();
  connections_.clear();
}

}  // namespace rdfalign::service
