// The rdfalignd wire protocol: length-prefixed frames over a TCP stream.
//
// Every frame is a little-endian uint32 byte count followed by that many
// payload bytes. A request is ONE frame holding the verb invocation as
// newline-separated argv tokens (verb first, flags and positionals
// exactly as the CLI would receive them — tokens must not contain
// newlines). A response is TWO frames:
//
//   1. the envelope — a small JSON object
//        {"ok": bool, "verb": "...", "exit_code": N,
//         "usage_error": bool, "cache_hits": N, "cache_misses": N,
//         "error": "..."}            (error present only on failure)
//   2. the body — the rendered verb output, byte-identical to what the
//      CLI would have printed to stdout for the same tokens (empty on
//      failure). Keeping the body outside the envelope is what makes
//      `rdfalign client ...` output exactly equal to in-process output.
//
// Connections are persistent: a client may send any number of requests
// and closes by shutting down its write side (the server sees EOF).
//
// Deadlines: both frame helpers take an optional `timeout_ms`. Zero (the
// default) blocks forever — existing callers are unchanged. A positive
// value starts a deadline when the helper is entered and covers the WHOLE
// frame (header + payload), so a peer that trickles one byte per minute
// cannot hold a worker hostage; expiry surfaces as an IOError whose
// message starts with "socket timeout" (test with IsTimeout).
//
// Fault injection: the underlying read/send syscalls sit behind the
// `socket.read` / `socket.write` failpoints (util/fault_injector.h) so
// tests can force errors, short transfers, and EINTR storms at any frame
// position without a cooperating peer.

#ifndef RDFALIGN_SERVICE_PROTOCOL_H_
#define RDFALIGN_SERVICE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace rdfalign::service {

/// Frames above this are rejected as malformed (a defense against
/// garbage length prefixes, not a practical limit — requests are argv
/// lists and responses are reports).
constexpr uint32_t kMaxFrameBytes = 64u << 20;

/// Writes one frame; loops over partial writes. IOError on failure.
/// `timeout_ms` > 0 bounds the whole frame write.
Status WriteFrame(int fd, const std::string& payload, int timeout_ms = 0);

/// Reads one frame into `payload`. Returns false on clean EOF before the
/// first length byte; IOError on mid-frame EOF or read failure;
/// InvalidArgument on an oversized length prefix. `timeout_ms` > 0 bounds
/// the whole frame read (header + payload together).
Result<bool> ReadFrame(int fd, std::string* payload, int timeout_ms = 0);

/// True when `status` is the deadline expiry produced by WriteFrame /
/// ReadFrame with a positive timeout.
bool IsTimeout(const Status& status);

/// argv tokens <-> newline-separated request payload.
std::string EncodeRequest(const std::vector<std::string>& tokens);
std::vector<std::string> DecodeRequest(const std::string& payload);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_PROTOCOL_H_
