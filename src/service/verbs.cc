#include "service/verbs.h"

#include <filesystem>
#include <utility>

#include "core/delta.h"
#include "gen/category_gen.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "parser/turtle_parser.h"
#include "rdf/merge.h"
#include "service/json.h"
#include "store/update_fragment.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace rdfalign::service {

namespace {

bool HasSuffix(const std::string& s, const char* suffix) {
  const size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

Result<AlignMethod> ParseMethod(const std::string& name) {
  if (name == "trivial") return AlignMethod::kTrivial;
  if (name == "deblank") return AlignMethod::kDeblank;
  if (name == "hybrid") return AlignMethod::kHybrid;
  if (name == "hybrid-contextual") return AlignMethod::kHybridContextual;
  if (name == "overlap") return AlignMethod::kOverlap;
  return Status::InvalidArgument("unknown alignment method: " + name);
}

/// Fills the usage/message fields for a failed OnlyKnown / positional
/// check (both present as usage errors, message first when set).
bool UsageError(ParseError* error, std::string message = "") {
  if (error) {
    error->usage = true;
    error->message = std::move(message);
  }
  return false;
}

bool PlainError(ParseError* error, std::string message) {
  if (error) {
    error->usage = false;
    error->message = std::move(message);
  }
  return false;
}

/// Aligner options from a parsed request: raw thread count (0 = all
/// hardware threads is the engine's convention) into the refinement and
/// overlap pipelines, exactly as the historical CLI wired it.
AlignerOptions MakeAlignerOptions(AlignMethod method,
                                  const CommonOptions& common) {
  AlignerOptions options;
  options.method = method;
  options.refinement.threads = common.threads;
  options.overlap.propagate.refinement = options.refinement;
  return options;
}

void CountAcquire(const AcquiredGraph& g, uint64_t* hits, uint64_t* misses) {
  if (g.cache_hit) {
    ++*hits;
  } else {
    ++*misses;
  }
}

}  // namespace

// ---------------------------------------------------------------- build

bool ParseBuildRequest(const Args& args, BuildRequest* req,
                       ParseError* error) {
  if (args.positional().size() != 2) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"format", "threads", "json", "no-dict-compress"},
                      &message)) {
    return UsageError(error, message);
  }
  req->input = args.positional()[0];
  req->output = args.positional()[1];
  req->format = args.GetString("format", "auto");
  if (!ParseCommonFlags(args, "build", &req->common, &message)) {
    return PlainError(error, message);
  }
  if (req->format != "auto" && req->format != "ntriples" &&
      req->format != "turtle") {
    return PlainError(error, "rdfalign: unknown --format=" + req->format);
  }
  return true;
}

Status RunBuild(const BuildRequest& req, BuildResponse* resp) {
  const size_t workers = ResolveThreads(req.common.threads);
  resp->output = req.output;
  resp->threads = workers;

  WallTimer parse_timer;
  Result<TripleGraph> graph = Status::Internal("unreachable");
  if (req.format == "turtle" ||
      (req.format == "auto" && HasSuffix(req.input, ".ttl"))) {
    graph = ParseTurtleFile(req.input, nullptr, workers);
  } else {
    graph = ParseNTriplesFile(req.input, nullptr, nullptr, workers);
  }
  RDFALIGN_RETURN_IF_ERROR(graph.status());
  resp->parse_ms = parse_timer.ElapsedMillis();
  resp->nodes = graph->NumNodes();
  resp->triples = graph->NumEdges();

  WallTimer write_timer;
  RDFALIGN_RETURN_IF_ERROR(store::WriteSnapshot(
      *graph, req.output, {.compress_dict = req.common.compress_dict}));
  resp->write_ms = write_timer.ElapsedMillis();
  return Status::OK();
}

std::string BuildToJson(const BuildResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"output\": \"%s\",\n", r.output.c_str());
  b.Appendf("  \"nodes\": %zu,\n", r.nodes);
  b.Appendf("  \"triples\": %zu,\n", r.triples);
  b.Appendf("  \"threads\": %zu,\n", r.threads);
  b.Appendf("  \"parse_ms\": %.2f,\n", r.parse_ms);
  b.Appendf("  \"write_ms\": %.2f\n", r.write_ms);
  b.Appendf("}\n");
  return b.Take();
}

std::string BuildToText(const BuildResponse& r) {
  JsonBuf b;
  b.Appendf(
      "built %s: %zu nodes, %zu triples (parse %.1f ms, "
      "write %.1f ms, %zu threads)\n",
      r.output.c_str(), r.nodes, r.triples, r.parse_ms, r.write_ms,
      r.threads);
  return b.Take();
}

// ----------------------------------------------------------------- info

bool ParseInfoRequest(const Args& args, InfoRequest* req, ParseError* error) {
  if (args.positional().size() != 1) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"json", "threads", "mmap", "no-verify-checksums"},
                      &message)) {
    return UsageError(error, message);
  }
  req->path = args.positional()[0];
  if (!ParseCommonFlags(args, "info", &req->common, &message)) {
    return PlainError(error, message);
  }
  req->with_fingerprint = req->common.json;
  return true;
}

Status RunInfo(const InfoRequest& req, InfoResponse* resp) {
  resp->path = req.path;
  if (store::LooksLikeDelta(req.path)) {
    resp->kind = "delta";
    RDFALIGN_ASSIGN_OR_RETURN(resp->delta, store::ReadDeltaInfo(req.path));
    resp->has_fingerprint = true;
    resp->fingerprint = resp->delta.base_fingerprint;
    return Status::OK();
  }
  if (store::LooksLikeArchive(req.path)) {
    resp->kind = "archive";
    RDFALIGN_ASSIGN_OR_RETURN(resp->archive,
                              store::ReadArchiveInfo(req.path));
    if (req.with_fingerprint && resp->archive.num_versions > 0) {
      RDFALIGN_ASSIGN_OR_RETURN(resp->fingerprint,
                                store::ArchiveBaseFingerprint(req.path));
      resp->has_fingerprint = true;
    }
    return Status::OK();
  }
  if (store::LooksLikeUpdateFile(req.path)) {
    resp->kind = "update";
    RDFALIGN_ASSIGN_OR_RETURN(const store::UpdateBatch batch,
                              store::ReadUpdateFile(req.path));
    resp->update.sequence = batch.sequence;
    resp->update.refs = batch.nodes.size();
    resp->update.new_nodes = batch.num_new;
    resp->update.removed_nodes = batch.removed_nodes.size();
    resp->update.removed_triples = batch.removed.size();
    resp->update.added_triples = batch.added.size();
    std::error_code ec;
    const auto size = std::filesystem::file_size(req.path, ec);
    resp->update.file_bytes = ec ? 0 : static_cast<uint64_t>(size);
    return Status::OK();
  }
  // Snapshot, or the error path for files that are no store format at all.
  resp->kind = "snapshot";
  RDFALIGN_ASSIGN_OR_RETURN(resp->snapshot,
                            store::ReadSnapshotInfo(req.path));
  if (req.with_fingerprint) {
    // The fingerprint is a property of the graph content, so the graph is
    // actually loaded — through the daemon's cache this is the resident
    // fast path, in the CLI a one-shot load.
    RDFALIGN_ASSIGN_OR_RETURN(
        AcquiredGraph g, req.source->Acquire(req.path, req.common, true));
    CountAcquire(g, &resp->cache_hits, &resp->cache_misses);
    resp->fingerprint = g.loaded->fingerprint;
    resp->has_fingerprint = true;
  }
  return Status::OK();
}

std::string InfoToJson(const InfoResponse& r) {
  JsonBuf b;
  if (r.kind == "delta") {
    const auto& info = r.delta;
    b.Appendf("{\n");
    b.Appendf("  \"path\": \"%s\",\n", r.path.c_str());
    b.Appendf("  \"kind\": \"delta\",\n");
    b.Appendf("  \"version\": %u,\n", info.version);
    b.Appendf(
        "  \"base\": {\"nodes\": %llu, \"triples\": %llu, "
        "\"terms\": %llu, \"fingerprint\": \"%016llx\"},\n",
        (unsigned long long)info.base_nodes,
        (unsigned long long)info.base_triples,
        (unsigned long long)info.base_terms,
        (unsigned long long)info.base_fingerprint);
    b.Appendf(
        "  \"next\": {\"nodes\": %llu, \"triples\": %llu, "
        "\"terms\": %llu, \"new_terms\": %llu},\n",
        (unsigned long long)info.next_nodes,
        (unsigned long long)info.next_triples,
        (unsigned long long)info.next_terms,
        (unsigned long long)info.num_new_terms);
    b.Appendf("  \"file_bytes\": %llu,\n",
              (unsigned long long)info.file_size);
    b.Appendf("  \"sections\": [\n");
    for (size_t i = 0; i < info.sections.size(); ++i) {
      const auto& s = info.sections[i];
      b.Appendf(
          "    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
          "\"checksum\": \"%016llx\"}%s\n",
          std::string(store::DeltaSectionName(s.id)).c_str(),
          (unsigned long long)s.offset, (unsigned long long)s.size,
          (unsigned long long)s.checksum,
          i + 1 < info.sections.size() ? "," : "");
    }
    b.Appendf("  ]\n}\n");
    return b.Take();
  }
  if (r.kind == "archive") {
    const auto& info = r.archive;
    b.Appendf("{\n");
    b.Appendf("  \"path\": \"%s\",\n", r.path.c_str());
    b.Appendf("  \"kind\": \"archive\",\n");
    b.Appendf("  \"version\": %u,\n", info.version);
    b.Appendf("  \"versions\": %llu,\n",
              (unsigned long long)info.num_versions);
    if (r.has_fingerprint) {
      b.Appendf("  \"base_fingerprint\": \"%016llx\",\n",
                (unsigned long long)r.fingerprint);
    }
    b.Appendf("  \"file_bytes\": %llu,\n",
              (unsigned long long)info.file_size);
    b.Appendf("  \"sections\": [\n");
    for (size_t i = 0; i < info.sections.size(); ++i) {
      const auto& s = info.sections[i];
      b.Appendf(
          "    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
          "\"checksum\": \"%016llx\"}%s\n",
          std::string(store::ArchiveSectionName(s.id)).c_str(),
          (unsigned long long)s.offset, (unsigned long long)s.size,
          (unsigned long long)s.checksum,
          i + 1 < info.sections.size() ? "," : "");
    }
    b.Appendf("  ]\n}\n");
    return b.Take();
  }
  if (r.kind == "update") {
    const auto& info = r.update;
    b.Appendf("{\n");
    b.Appendf("  \"path\": \"%s\",\n", r.path.c_str());
    b.Appendf("  \"kind\": \"update\",\n");
    b.Appendf("  \"sequence\": %llu,\n", (unsigned long long)info.sequence);
    b.Appendf("  \"refs\": %zu,\n", info.refs);
    b.Appendf("  \"new_nodes\": %zu,\n", info.new_nodes);
    b.Appendf("  \"removed_nodes\": %zu,\n", info.removed_nodes);
    b.Appendf("  \"removed_triples\": %zu,\n", info.removed_triples);
    b.Appendf("  \"added_triples\": %zu,\n", info.added_triples);
    b.Appendf("  \"file_bytes\": %llu\n",
              (unsigned long long)info.file_bytes);
    b.Appendf("}\n");
    return b.Take();
  }
  const auto& info = r.snapshot;
  b.Appendf("{\n");
  b.Appendf("  \"path\": \"%s\",\n", r.path.c_str());
  b.Appendf("  \"version\": %u,\n", info.version);
  b.Appendf("  \"nodes\": %llu,\n", (unsigned long long)info.num_nodes);
  b.Appendf("  \"triples\": %llu,\n", (unsigned long long)info.num_triples);
  b.Appendf("  \"terms\": %llu,\n", (unsigned long long)info.num_terms);
  if (r.has_fingerprint) {
    b.Appendf("  \"fingerprint\": \"%016llx\",\n",
              (unsigned long long)r.fingerprint);
  }
  b.Appendf("  \"file_bytes\": %llu,\n", (unsigned long long)info.file_size);
  b.Appendf("  \"sections\": [\n");
  for (size_t i = 0; i < info.sections.size(); ++i) {
    const auto& s = info.sections[i];
    b.Appendf(
        "    {\"name\": \"%s\", \"offset\": %llu, \"bytes\": %llu, "
        "\"checksum\": \"%016llx\"}%s\n",
        std::string(store::SectionName(s.id)).c_str(),
        (unsigned long long)s.offset, (unsigned long long)s.size,
        (unsigned long long)s.checksum,
        i + 1 < info.sections.size() ? "," : "");
  }
  b.Appendf("  ]\n}\n");
  return b.Take();
}

std::string InfoToText(const InfoResponse& r) {
  JsonBuf b;
  if (r.kind == "delta") {
    const auto& info = r.delta;
    b.Appendf("rdfalign delta %s\n", r.path.c_str());
    b.Appendf("  format version : %u\n", info.version);
    b.Appendf("  base           : %llu nodes, %llu triples, %llu terms\n",
              (unsigned long long)info.base_nodes,
              (unsigned long long)info.base_triples,
              (unsigned long long)info.base_terms);
    b.Appendf("  base fingerprint: %016llx\n",
              (unsigned long long)info.base_fingerprint);
    b.Appendf(
        "  next           : %llu nodes, %llu triples, %llu terms "
        "(%llu new)\n",
        (unsigned long long)info.next_nodes,
        (unsigned long long)info.next_triples,
        (unsigned long long)info.next_terms,
        (unsigned long long)info.num_new_terms);
    b.Appendf("  file size      : %llu bytes\n",
              (unsigned long long)info.file_size);
    b.Appendf("  sections:\n");
    for (const auto& s : info.sections) {
      b.Appendf(
          "    %-16s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
          std::string(store::DeltaSectionName(s.id)).c_str(),
          (unsigned long long)s.offset, (unsigned long long)s.size,
          (unsigned long long)s.checksum);
    }
    return b.Take();
  }
  if (r.kind == "archive") {
    const auto& info = r.archive;
    b.Appendf("rdfalign archive %s\n", r.path.c_str());
    b.Appendf("  format version : %u\n", info.version);
    b.Appendf("  versions       : %llu\n",
              (unsigned long long)info.num_versions);
    b.Appendf("  file size      : %llu bytes\n",
              (unsigned long long)info.file_size);
    b.Appendf("  sections:\n");
    for (const auto& s : info.sections) {
      b.Appendf(
          "    %-13s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
          std::string(store::ArchiveSectionName(s.id)).c_str(),
          (unsigned long long)s.offset, (unsigned long long)s.size,
          (unsigned long long)s.checksum);
    }
    return b.Take();
  }
  if (r.kind == "update") {
    const auto& info = r.update;
    b.Appendf("rdfalign update fragment %s\n", r.path.c_str());
    b.Appendf("  sequence       : %llu\n",
              (unsigned long long)info.sequence);
    b.Appendf("  node refs      : %zu (%zu new)\n", info.refs,
              info.new_nodes);
    b.Appendf("  removed        : %zu triples, %zu nodes\n",
              info.removed_triples, info.removed_nodes);
    b.Appendf("  added          : %zu triples\n", info.added_triples);
    b.Appendf("  file size      : %llu bytes\n",
              (unsigned long long)info.file_bytes);
    return b.Take();
  }
  const auto& info = r.snapshot;
  b.Appendf("rdfalign snapshot %s\n", r.path.c_str());
  b.Appendf("  format version : %u\n", info.version);
  b.Appendf("  nodes          : %llu\n", (unsigned long long)info.num_nodes);
  b.Appendf("  triples        : %llu\n",
            (unsigned long long)info.num_triples);
  b.Appendf("  dictionary     : %llu terms\n",
            (unsigned long long)info.num_terms);
  b.Appendf("  file size      : %llu bytes\n",
            (unsigned long long)info.file_size);
  b.Appendf("  sections:\n");
  for (const auto& s : info.sections) {
    b.Appendf(
        "    %-12s offset=%-10llu bytes=%-10llu checksum=%016llx\n",
        std::string(store::SectionName(s.id)).c_str(),
        (unsigned long long)s.offset, (unsigned long long)s.size,
        (unsigned long long)s.checksum);
  }
  return b.Take();
}

// ---------------------------------------------------------------- align

bool ParseAlignRequest(const Args& args, AlignRequest* req,
                       ParseError* error) {
  if (args.positional().size() != 2) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown(
          {"method", "threads", "mmap", "json", "no-verify-checksums"},
          &message)) {
    return UsageError(error, message);
  }
  req->path_a = args.positional()[0];
  req->path_b = args.positional()[1];
  auto method = ParseMethod(args.GetString("method", "hybrid"));
  if (!method.ok()) {
    return PlainError(error,
                      "rdfalign align: " + method.status().ToString());
  }
  req->method = *method;
  if (!ParseCommonFlags(args, "align", &req->common, &message)) {
    return PlainError(error, message);
  }
  return true;
}

Status RunAlign(const AlignRequest& req, AlignResponse* resp) {
  const AlignerOptions options = MakeAlignerOptions(req.method, req.common);
  const size_t workers = ResolveThreads(req.common.threads);
  resp->method = req.method;
  resp->threads = workers;
  resp->path_a = req.path_a;
  resp->path_b = req.path_b;

  // One shared dictionary puts both versions in a single label space; the
  // acquired graphs (possibly cache-resident, each with a private
  // dictionary) are rebound into it zero-copy.
  auto dict = std::make_shared<Dictionary>();
  WallTimer load_a_timer;
  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph a, req.source->Acquire(req.path_a, req.common, false));
  CountAcquire(a, &resp->cache_hits, &resp->cache_misses);
  TripleGraph ga = RebindGraph(a.loaded, dict);
  resp->load_a_ms = load_a_timer.ElapsedMillis();
  resp->kind_a = a.loaded->kind;
  resp->nodes_a = ga.NumNodes();
  resp->triples_a = ga.NumEdges();

  WallTimer load_b_timer;
  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph bg, req.source->Acquire(req.path_b, req.common, false));
  CountAcquire(bg, &resp->cache_hits, &resp->cache_misses);
  TripleGraph gb = RebindGraph(bg.loaded, dict);
  resp->load_b_ms = load_b_timer.ElapsedMillis();
  resp->kind_b = bg.loaded->kind;
  resp->nodes_b = gb.NumNodes();
  resp->triples_b = gb.NumEdges();

  Aligner aligner(options);
  RDFALIGN_ASSIGN_OR_RETURN(AlignmentOutcome o, aligner.Align(ga, gb));
  resp->seconds = o.seconds;
  resp->phases = o.phases;
  resp->edge_stats = o.edge_stats;
  resp->node_stats = o.node_stats;
  resp->refinement = o.refinement;
  return Status::OK();
}

std::string AlignToJson(const AlignResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"method\": \"%s\",\n",
            std::string(AlignMethodToString(r.method)).c_str());
  b.Appendf("  \"threads\": %zu,\n", r.threads);
  b.Appendf(
      "  \"a\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu, \"load_ms\": %.2f},\n",
      r.path_a.c_str(), r.kind_a.c_str(), r.nodes_a, r.triples_a,
      r.load_a_ms);
  b.Appendf(
      "  \"b\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu, \"load_ms\": %.2f},\n",
      r.path_b.c_str(), r.kind_b.c_str(), r.nodes_b, r.triples_b,
      r.load_b_ms);
  b.Appendf("  \"align_seconds\": %.4f,\n", r.seconds);
  b.Appendf(
      "  \"phases\": {\"merge_ms\": %.2f, \"refine_ms\": %.2f, "
      "\"enrich_ms\": %.2f, \"overlap_index_ms\": %.2f, "
      "\"match_ms\": %.2f, \"stats_ms\": %.2f},\n",
      r.phases.merge_ms, r.phases.refine_ms, r.phases.enrich_ms,
      r.phases.overlap_index_ms, r.phases.match_ms, r.phases.stats_ms);
  b.Appendf("  \"aligned_edge_ratio\": %.6f,\n", r.edge_stats.Ratio());
  b.Appendf("  \"aligned_edges\": %zu,\n", r.edge_stats.aligned_edges);
  b.Appendf("  \"total_edges\": %zu,\n", r.edge_stats.total_edges);
  b.Appendf("  \"aligned_classes\": %zu,\n", r.node_stats.aligned_classes);
  b.Appendf("  \"unaligned_source_nodes\": %zu,\n",
            r.node_stats.unaligned_source_nodes);
  b.Appendf("  \"unaligned_target_nodes\": %zu,\n",
            r.node_stats.unaligned_target_nodes);
  b.Appendf("  \"refinement_iterations\": %zu,\n", r.refinement.iterations);
  b.Appendf("  \"final_classes\": %zu\n", r.refinement.final_classes);
  b.Appendf("}\n");
  return b.Take();
}

std::string AlignToText(const AlignResponse& r) {
  JsonBuf b;
  b.Appendf("alignment report (%s)\n",
            std::string(AlignMethodToString(r.method)).c_str());
  b.Appendf("  a: %s [%s] %zu nodes, %zu triples, loaded in %.1f ms\n",
            r.path_a.c_str(), r.kind_a.c_str(), r.nodes_a, r.triples_a,
            r.load_a_ms);
  b.Appendf("  b: %s [%s] %zu nodes, %zu triples, loaded in %.1f ms\n",
            r.path_b.c_str(), r.kind_b.c_str(), r.nodes_b, r.triples_b,
            r.load_b_ms);
  b.Appendf("  threads            : %zu\n", r.threads);
  b.Appendf("  align time         : %.3f s\n", r.seconds);
  b.Appendf(
      "  phases (ms)        : merge %.1f, refine %.1f, enrich %.1f,"
      " index %.1f, match %.1f, stats %.1f\n",
      r.phases.merge_ms, r.phases.refine_ms, r.phases.enrich_ms,
      r.phases.overlap_index_ms, r.phases.match_ms, r.phases.stats_ms);
  b.Appendf("  aligned edge ratio : %.4f (%zu / %zu)\n",
            r.edge_stats.Ratio(), r.edge_stats.aligned_edges,
            r.edge_stats.total_edges);
  b.Appendf("  aligned classes    : %zu\n", r.node_stats.aligned_classes);
  b.Appendf("  aligned nodes      : %zu source, %zu target\n",
            r.node_stats.aligned_source_nodes,
            r.node_stats.aligned_target_nodes);
  b.Appendf("  unaligned nodes    : %zu source, %zu target\n",
            r.node_stats.unaligned_source_nodes,
            r.node_stats.unaligned_target_nodes);
  if (r.refinement.iterations > 0) {
    b.Appendf("  refinement         : %zu iterations, %zu classes\n",
              r.refinement.iterations, r.refinement.final_classes);
  }
  return b.Take();
}

// ----------------------------------------------------------------- diff

bool ParseDiffRequest(const Args& args, DiffRequest* req, ParseError* error) {
  if (args.positional().size() != 3) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"method", "threads", "mmap", "json",
                       "no-verify-checksums", "no-dict-compress"},
                      &message)) {
    return UsageError(error, message);
  }
  req->path_base = args.positional()[0];
  req->path_next = args.positional()[1];
  req->path_out = args.positional()[2];
  auto method = ParseMethod(args.GetString("method", "hybrid"));
  if (!method.ok()) {
    return PlainError(error, "rdfalign diff: " + method.status().ToString());
  }
  req->method = *method;
  if (!ParseCommonFlags(args, "diff", &req->common, &message)) {
    return PlainError(error, message);
  }
  return true;
}

Status RunDiff(const DiffRequest& req, DiffResponse* resp) {
  const AlignerOptions options = MakeAlignerOptions(req.method, req.common);
  const size_t workers = ResolveThreads(req.common.threads);
  resp->method = req.method;
  resp->threads = workers;
  resp->path_base = req.path_base;
  resp->path_next = req.path_next;
  resp->path_out = req.path_out;

  auto dict = std::make_shared<Dictionary>();
  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph base,
      req.source->Acquire(req.path_base, req.common, false));
  CountAcquire(base, &resp->cache_hits, &resp->cache_misses);
  TripleGraph gbase = RebindGraph(base.loaded, dict);
  resp->kind_base = base.loaded->kind;
  resp->nodes_base = gbase.NumNodes();
  resp->triples_base = gbase.NumEdges();

  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph next,
      req.source->Acquire(req.path_next, req.common, false));
  CountAcquire(next, &resp->cache_hits, &resp->cache_misses);
  TripleGraph gnext = RebindGraph(next.loaded, dict);
  resp->kind_next = next.loaded->kind;
  resp->nodes_next = gnext.NumNodes();
  resp->triples_next = gnext.NumEdges();

  WallTimer align_timer;
  RDFALIGN_ASSIGN_OR_RETURN(CombinedGraph cg,
                            CombinedGraph::Build(gbase, gnext, workers));
  Aligner aligner(options);
  AlignmentOutcome outcome = aligner.AlignCombined(cg);
  const VersionNodeMap map = NodeMapFromPartition(cg, outcome.partition);
  resp->align_ms = align_timer.ElapsedMillis();

  WallTimer write_timer;
  RDFALIGN_RETURN_IF_ERROR(
      store::WriteDelta(gbase, gnext, map, req.path_out, &resp->stats,
                        {.compress_dict = req.common.compress_dict}));
  resp->write_ms = write_timer.ElapsedMillis();
  return Status::OK();
}

std::string DiffToJson(const DiffResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"method\": \"%s\",\n",
            std::string(AlignMethodToString(r.method)).c_str());
  b.Appendf("  \"threads\": %zu,\n", r.threads);
  b.Appendf(
      "  \"base\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu},\n",
      r.path_base.c_str(), r.kind_base.c_str(), r.nodes_base,
      r.triples_base);
  b.Appendf(
      "  \"next\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu},\n",
      r.path_next.c_str(), r.kind_next.c_str(), r.nodes_next,
      r.triples_next);
  b.Appendf("  \"delta\": \"%s\",\n", r.path_out.c_str());
  b.Appendf("  \"kept_triples\": %llu,\n",
            (unsigned long long)r.stats.kept_triples);
  b.Appendf("  \"removed_triples\": %llu,\n",
            (unsigned long long)r.stats.removed_triples);
  b.Appendf("  \"added_triples\": %llu,\n",
            (unsigned long long)r.stats.added_triples);
  b.Appendf("  \"new_terms\": %llu,\n",
            (unsigned long long)r.stats.new_terms);
  b.Appendf("  \"mapped_nodes\": %llu,\n",
            (unsigned long long)r.stats.mapped_nodes);
  b.Appendf("  \"kept_runs\": %llu,\n",
            (unsigned long long)r.stats.kept_runs);
  b.Appendf("  \"delta_bytes\": %llu,\n",
            (unsigned long long)r.stats.file_bytes);
  b.Appendf("  \"align_ms\": %.2f,\n", r.align_ms);
  b.Appendf("  \"write_ms\": %.2f\n", r.write_ms);
  b.Appendf("}\n");
  return b.Take();
}

std::string DiffToText(const DiffResponse& r) {
  JsonBuf b;
  b.Appendf("wrote delta %s (%llu bytes)\n", r.path_out.c_str(),
            (unsigned long long)r.stats.file_bytes);
  b.Appendf("  base            : %s [%s] %zu nodes, %zu triples\n",
            r.path_base.c_str(), r.kind_base.c_str(), r.nodes_base,
            r.triples_base);
  b.Appendf("  next            : %s [%s] %zu nodes, %zu triples\n",
            r.path_next.c_str(), r.kind_next.c_str(), r.nodes_next,
            r.triples_next);
  b.Appendf(
      "  change          : ~%llu kept (+%llu -%llu), "
      "%llu new terms\n",
      (unsigned long long)r.stats.kept_triples,
      (unsigned long long)r.stats.added_triples,
      (unsigned long long)r.stats.removed_triples,
      (unsigned long long)r.stats.new_terms);
  b.Appendf("  mapped nodes    : %llu / %zu (%llu kept runs)\n",
            (unsigned long long)r.stats.mapped_nodes, r.nodes_next,
            (unsigned long long)r.stats.kept_runs);
  b.Appendf("  align %.1f ms, write %.1f ms\n", r.align_ms, r.write_ms);
  return b.Take();
}

// ---------------------------------------------------------------- patch

bool ParsePatchRequest(const Args& args, PatchRequest* req,
                       ParseError* error) {
  if (args.positional().size() != 3) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"threads", "mmap", "json", "no-verify-checksums",
                       "no-dict-compress"},
                      &message)) {
    return UsageError(error, message);
  }
  req->path_base = args.positional()[0];
  req->path_delta = args.positional()[1];
  req->path_out = args.positional()[2];
  if (!ParseCommonFlags(args, "patch", &req->common, &message)) {
    return PlainError(error, message);
  }
  return true;
}

Status RunPatch(const PatchRequest& req, PatchResponse* resp) {
  const size_t workers = ResolveThreads(req.common.threads);
  resp->threads = workers;
  resp->path_base = req.path_base;
  resp->path_delta = req.path_delta;
  resp->path_out = req.path_out;

  auto dict = std::make_shared<Dictionary>();
  WallTimer load_timer;
  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph base,
      req.source->Acquire(req.path_base, req.common, false));
  CountAcquire(base, &resp->cache_hits, &resp->cache_misses);
  TripleGraph gbase = RebindGraph(base.loaded, dict);
  resp->load_ms = load_timer.ElapsedMillis();
  resp->kind_base = base.loaded->kind;
  resp->nodes_base = gbase.NumNodes();
  resp->triples_base = gbase.NumEdges();

  WallTimer apply_timer;
  store::DeltaApplyOptions apply_options;
  apply_options.threads = workers;
  apply_options.verify_checksums = req.common.verify_checksums;
  RDFALIGN_ASSIGN_OR_RETURN(
      TripleGraph next, store::ApplyDelta(gbase, req.path_delta, dict,
                                          apply_options, &resp->stats));
  resp->apply_ms = apply_timer.ElapsedMillis();
  resp->nodes = next.NumNodes();
  resp->triples = next.NumEdges();

  WallTimer write_timer;
  RDFALIGN_RETURN_IF_ERROR(store::WriteSnapshot(
      next, req.path_out, {.compress_dict = req.common.compress_dict}));
  resp->write_ms = write_timer.ElapsedMillis();
  return Status::OK();
}

std::string PatchToJson(const PatchResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"threads\": %zu,\n", r.threads);
  b.Appendf(
      "  \"base\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu},\n",
      r.path_base.c_str(), r.kind_base.c_str(), r.nodes_base,
      r.triples_base);
  b.Appendf("  \"delta\": \"%s\",\n", r.path_delta.c_str());
  b.Appendf("  \"out\": \"%s\",\n", r.path_out.c_str());
  b.Appendf("  \"nodes\": %zu,\n", r.nodes);
  b.Appendf("  \"triples\": %zu,\n", r.triples);
  b.Appendf("  \"kept_triples\": %llu,\n",
            (unsigned long long)r.stats.kept_triples);
  b.Appendf("  \"removed_triples\": %llu,\n",
            (unsigned long long)r.stats.removed_triples);
  b.Appendf("  \"added_triples\": %llu,\n",
            (unsigned long long)r.stats.added_triples);
  b.Appendf("  \"load_ms\": %.2f,\n", r.load_ms);
  b.Appendf("  \"apply_ms\": %.2f,\n", r.apply_ms);
  b.Appendf("  \"write_ms\": %.2f\n", r.write_ms);
  b.Appendf("}\n");
  return b.Take();
}

std::string PatchToText(const PatchResponse& r) {
  JsonBuf b;
  b.Appendf(
      "patched %s + %s -> %s: %zu nodes, %zu triples "
      "(~%llu kept +%llu -%llu)\n",
      r.path_base.c_str(), r.path_delta.c_str(), r.path_out.c_str(),
      r.nodes, r.triples, (unsigned long long)r.stats.kept_triples,
      (unsigned long long)r.stats.added_triples,
      (unsigned long long)r.stats.removed_triples);
  b.Appendf("  load %.1f ms, apply %.1f ms, write %.1f ms\n", r.load_ms,
            r.apply_ms, r.write_ms);
  return b.Take();
}

// -------------------------------------------------------------- archive

bool ParseArchiveRequest(const Args& args, ArchiveRequest* req,
                         ParseError* error) {
  if (args.positional().size() < 2) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"method", "threads", "mmap", "json",
                       "no-verify-checksums", "no-dict-compress"},
                      &message)) {
    return UsageError(error, message);
  }
  req->path_out = args.positional()[0];
  req->versions.assign(args.positional().begin() + 1,
                       args.positional().end());
  auto method = ParseMethod(args.GetString("method", "hybrid"));
  if (!method.ok()) {
    return PlainError(error,
                      "rdfalign archive: " + method.status().ToString());
  }
  req->method = *method;
  if (!ParseCommonFlags(args, "archive", &req->common, &message)) {
    return PlainError(error, message);
  }
  return true;
}

Status RunArchive(const ArchiveRequest& req, ArchiveResponse* resp) {
  const AlignerOptions options = MakeAlignerOptions(req.method, req.common);
  const size_t workers = ResolveThreads(req.common.threads);
  resp->method = req.method;
  resp->threads = workers;
  resp->path_out = req.path_out;

  // One shared dictionary across the whole chain (the Append invariant).
  auto dict = std::make_shared<Dictionary>();
  VersionArchive archive(options);
  WallTimer append_timer;
  for (const std::string& path : req.versions) {
    RDFALIGN_ASSIGN_OR_RETURN(AcquiredGraph g,
                              req.source->Acquire(path, req.common, false));
    CountAcquire(g, &resp->cache_hits, &resp->cache_misses);
    TripleGraph graph = RebindGraph(g.loaded, dict);
    RDFALIGN_RETURN_IF_ERROR(archive.Append(graph).status());
  }
  resp->append_ms = append_timer.ElapsedMillis();

  WallTimer save_timer;
  RDFALIGN_RETURN_IF_ERROR(
      store::SaveArchive(archive, req.path_out, &resp->save_stats,
                         {.compress_dict = req.common.compress_dict}));
  resp->save_ms = save_timer.ElapsedMillis();
  resp->stats = archive.Stats();
  return Status::OK();
}

std::string ArchiveToJson(const ArchiveResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"archive\": \"%s\",\n", r.path_out.c_str());
  b.Appendf("  \"method\": \"%s\",\n",
            std::string(AlignMethodToString(r.method)).c_str());
  b.Appendf("  \"threads\": %zu,\n", r.threads);
  b.Appendf("  \"versions\": %zu,\n", r.stats.versions);
  b.Appendf("  \"entities\": %zu,\n", r.stats.entities);
  b.Appendf("  \"distinct_triples\": %zu,\n", r.stats.distinct_triples);
  b.Appendf("  \"interval_records\": %zu,\n", r.stats.interval_records);
  b.Appendf("  \"triple_version_pairs\": %zu,\n",
            r.stats.triple_version_pairs);
  b.Appendf("  \"compression_ratio\": %.4f,\n", r.stats.CompressionRatio());
  b.Appendf("  \"file_bytes\": %llu,\n",
            (unsigned long long)r.save_stats.file_bytes);
  b.Appendf("  \"base_bytes\": %llu,\n",
            (unsigned long long)r.save_stats.base_bytes);
  b.Appendf("  \"delta_bytes\": %llu,\n",
            (unsigned long long)r.save_stats.delta_bytes);
  b.Appendf("  \"append_ms\": %.2f,\n", r.append_ms);
  b.Appendf("  \"save_ms\": %.2f\n", r.save_ms);
  b.Appendf("}\n");
  return b.Take();
}

std::string ArchiveToText(const ArchiveResponse& r) {
  JsonBuf b;
  b.Appendf("archived %zu versions -> %s (%llu bytes)\n", r.stats.versions,
            r.path_out.c_str(),
            (unsigned long long)r.save_stats.file_bytes);
  b.Appendf("  entities            : %zu\n", r.stats.entities);
  b.Appendf("  interval records    : %zu (distinct triples %zu)\n",
            r.stats.interval_records, r.stats.distinct_triples);
  b.Appendf("  compression ratio   : %.2fx (%zu triple-version pairs)\n",
            r.stats.CompressionRatio(), r.stats.triple_version_pairs);
  b.Appendf("  base %llu bytes + deltas %llu bytes\n",
            (unsigned long long)r.save_stats.base_bytes,
            (unsigned long long)r.save_stats.delta_bytes);
  b.Appendf("  append %.1f ms, save %.1f ms\n", r.append_ms, r.save_ms);
  return b.Take();
}

// ------------------------------------------------------------------ gen

bool ParseGenRequest(const Args& args, GenRequest* req, ParseError* error) {
  if (args.positional().size() != 1) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"scale", "versions", "seed", "json"}, &message)) {
    return UsageError(error, message);
  }
  req->prefix = args.positional()[0];
  const std::optional<long long> versions =
      args.GetInt("versions", 2, &message);
  if (!versions) return PlainError(error, message);
  if (*versions < 1 || *versions > 1000) {
    return PlainError(error,
                      "rdfalign gen: --versions must be in [1, 1000]");
  }
  req->versions = *versions;
  req->scale = args.GetDouble("scale", 1.0);
  if (!(req->scale > 0.0) || req->scale > 1e6) {
    return PlainError(error, "rdfalign gen: --scale must be in (0, 1e6]");
  }
  const std::optional<long long> seed = args.GetInt("seed", 5, &message);
  if (!seed) return PlainError(error, message);
  if (*seed < 0) {
    return PlainError(error, "rdfalign gen: --seed must be >= 0");
  }
  req->seed = *seed;
  req->common.json = args.Has("json");
  return true;
}

Status RunGen(const GenRequest& req, GenResponse* resp) {
  resp->prefix = req.prefix;
  gen::CategoryOptions options = gen::CategoryOptions::FromScale(
      req.scale, static_cast<size_t>(req.versions),
      static_cast<uint64_t>(req.seed));
  gen::CategoryChain chain = gen::CategoryChain::Generate(options);
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    const std::string path = req.prefix + std::to_string(v + 1) + ".nt";
    RDFALIGN_RETURN_IF_ERROR(WriteNTriplesFile(chain.Version(v), path));
    resp->files.push_back(GenFileInfo{path, chain.Version(v).NumNodes(),
                                      chain.Version(v).NumEdges()});
  }
  return Status::OK();
}

std::string GenToJson(const GenResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"prefix\": \"%s\",\n", r.prefix.c_str());
  b.Appendf("  \"versions\": %zu,\n", r.files.size());
  b.Appendf("  \"files\": [\n");
  for (size_t i = 0; i < r.files.size(); ++i) {
    const GenFileInfo& f = r.files[i];
    b.Appendf("    {\"path\": \"%s\", \"nodes\": %zu, \"triples\": %zu}%s\n",
              f.path.c_str(), f.nodes, f.triples,
              i + 1 < r.files.size() ? "," : "");
  }
  b.Appendf("  ]\n}\n");
  return b.Take();
}

std::string GenToText(const GenResponse& r) {
  JsonBuf b;
  for (const GenFileInfo& f : r.files) {
    b.Appendf("wrote %s: %zu nodes, %zu triples\n", f.path.c_str(), f.nodes,
              f.triples);
  }
  return b.Take();
}

// ---------------------------------------------------------------- cache

bool ParseCacheRequest(const Args& args, CacheRequest* req,
                       ParseError* error) {
  if (args.positional().size() != 1) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"json"}, &message)) {
    return UsageError(error, message);
  }
  req->action = args.positional()[0];
  if (req->action != "stats" && req->action != "clear") {
    return PlainError(error, "rdfalign cache: unknown action '" +
                                 req->action +
                                 "' (expected stats or clear)");
  }
  req->common.json = args.Has("json");
  return true;
}

Status RunCache(const CacheRequest& req, CacheResponse* resp) {
  resp->action = req.action;
  SnapshotCache* cache = req.source ? req.source->cache() : nullptr;
  if (cache == nullptr) {
    return Status::InvalidArgument(
        "no resident snapshot cache (the cache verb needs rdfalignd)");
  }
  if (req.action == "clear") {
    resp->dropped_entries = cache->stats().entries;
    cache->Clear();
  } else {
    resp->entries = cache->entries();
  }
  resp->stats = cache->stats();
  return Status::OK();
}

std::string CacheToJson(const CacheResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf("  \"action\": \"%s\",\n", r.action.c_str());
  if (r.action == "clear") {
    b.Appendf("  \"dropped_entries\": %llu,\n",
              (unsigned long long)r.dropped_entries);
  }
  b.Appendf("  \"capacity_bytes\": %llu,\n",
            (unsigned long long)r.stats.capacity_bytes);
  b.Appendf("  \"resident_bytes\": %llu,\n",
            (unsigned long long)r.stats.resident_bytes);
  b.Appendf("  \"entries\": %llu,\n", (unsigned long long)r.stats.entries);
  b.Appendf("  \"hits\": %llu,\n", (unsigned long long)r.stats.hits);
  b.Appendf("  \"misses\": %llu,\n", (unsigned long long)r.stats.misses);
  b.Appendf("  \"evictions\": %llu,\n",
            (unsigned long long)r.stats.evictions);
  b.Appendf("  \"duplicate_loads\": %llu%s\n",
            (unsigned long long)r.stats.duplicate_loads,
            r.action == "stats" ? "," : "");
  if (r.action == "stats") {
    b.Appendf("  \"cached\": [\n");
    for (size_t i = 0; i < r.entries.size(); ++i) {
      const SnapshotCacheEntryInfo& e = r.entries[i];
      b.Appendf(
          "    {\"fingerprint\": \"%016llx\", \"bytes\": %llu, "
          "\"refs\": %llu, \"nodes\": %llu, \"triples\": %llu, "
          "\"path\": \"%s\"}%s\n",
          (unsigned long long)e.fingerprint,
          (unsigned long long)e.resident_bytes,
          (unsigned long long)e.external_refs, (unsigned long long)e.nodes,
          (unsigned long long)e.triples, e.path.c_str(),
          i + 1 < r.entries.size() ? "," : "");
    }
    b.Appendf("  ]\n");
  }
  b.Appendf("}\n");
  return b.Take();
}

std::string CacheToText(const CacheResponse& r) {
  JsonBuf b;
  if (r.action == "clear") {
    b.Appendf("cleared snapshot cache: dropped %llu entries\n",
              (unsigned long long)r.dropped_entries);
    return b.Take();
  }
  b.Appendf("snapshot cache: %llu entries, %llu / %llu bytes\n",
            (unsigned long long)r.stats.entries,
            (unsigned long long)r.stats.resident_bytes,
            (unsigned long long)r.stats.capacity_bytes);
  b.Appendf("  hits %llu, misses %llu, evictions %llu, duplicate loads %llu\n",
            (unsigned long long)r.stats.hits,
            (unsigned long long)r.stats.misses,
            (unsigned long long)r.stats.evictions,
            (unsigned long long)r.stats.duplicate_loads);
  for (const SnapshotCacheEntryInfo& e : r.entries) {
    b.Appendf("  %016llx  %llu bytes  refs=%llu  %llu nodes, %llu triples  %s\n",
              (unsigned long long)e.fingerprint,
              (unsigned long long)e.resident_bytes,
              (unsigned long long)e.external_refs,
              (unsigned long long)e.nodes, (unsigned long long)e.triples,
              e.path.c_str());
  }
  return b.Take();
}

// -------------------------------------------------------------- updates

bool ParseUpdatesRequest(const Args& args, UpdatesRequest* req,
                         ParseError* error) {
  if (args.positional().size() != 3) return UsageError(error);
  std::string message;
  if (!args.OnlyKnown({"seq", "threads", "mmap", "json",
                       "no-verify-checksums", "no-dict-compress"},
                      &message)) {
    return UsageError(error, message);
  }
  req->path_base = args.positional()[0];
  req->path_next = args.positional()[1];
  req->path_out = args.positional()[2];
  const std::optional<long long> seq = args.GetInt("seq", 1, &message);
  if (!seq) return PlainError(error, message);
  if (*seq < 0) {
    return PlainError(error, "rdfalign updates: --seq must be >= 0");
  }
  req->sequence = *seq;
  if (!ParseCommonFlags(args, "updates", &req->common, &message)) {
    return PlainError(error, message);
  }
  return true;
}

Status RunUpdates(const UpdatesRequest& req, UpdatesResponse* resp) {
  resp->path_base = req.path_base;
  resp->path_next = req.path_next;
  resp->path_out = req.path_out;

  // No shared-dictionary rebind here: BuildUpdateBatch matches nodes by
  // (kind, lexical form) strings, so each graph's private dictionary is
  // exactly what it needs.
  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph base,
      req.source->Acquire(req.path_base, req.common, false));
  CountAcquire(base, &resp->cache_hits, &resp->cache_misses);
  resp->kind_base = base.loaded->kind;
  resp->nodes_base = base.loaded->graph.NumNodes();
  resp->triples_base = base.loaded->graph.NumEdges();

  RDFALIGN_ASSIGN_OR_RETURN(
      AcquiredGraph next,
      req.source->Acquire(req.path_next, req.common, false));
  CountAcquire(next, &resp->cache_hits, &resp->cache_misses);
  resp->kind_next = next.loaded->kind;
  resp->nodes_next = next.loaded->graph.NumNodes();
  resp->triples_next = next.loaded->graph.NumEdges();

  WallTimer build_timer;
  RDFALIGN_ASSIGN_OR_RETURN(
      store::UpdateBatch batch,
      store::BuildUpdateBatch(base.loaded->graph, next.loaded->graph,
                              static_cast<uint64_t>(req.sequence)));
  resp->build_ms = build_timer.ElapsedMillis();
  resp->refs = batch.nodes.size();
  resp->new_nodes = batch.num_new;
  resp->removed_nodes = batch.removed_nodes.size();
  resp->removed_triples = batch.removed.size();
  resp->added_triples = batch.added.size();
  resp->sequence = batch.sequence;

  WallTimer write_timer;
  const store::StoreWriteOptions write_options{
      .compress_dict = req.common.compress_dict};
  RDFALIGN_ASSIGN_OR_RETURN(std::string bytes,
                            store::EncodeUpdateBatch(batch, write_options));
  resp->file_bytes = bytes.size();
  RDFALIGN_RETURN_IF_ERROR(
      store::WriteUpdateFile(batch, req.path_out, write_options));
  resp->write_ms = write_timer.ElapsedMillis();
  return Status::OK();
}

std::string UpdatesToJson(const UpdatesResponse& r) {
  JsonBuf b;
  b.Appendf("{\n");
  b.Appendf(
      "  \"base\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu},\n",
      r.path_base.c_str(), r.kind_base.c_str(), r.nodes_base,
      r.triples_base);
  b.Appendf(
      "  \"next\": {\"path\": \"%s\", \"kind\": \"%s\", "
      "\"nodes\": %zu, \"triples\": %zu},\n",
      r.path_next.c_str(), r.kind_next.c_str(), r.nodes_next,
      r.triples_next);
  b.Appendf("  \"fragment\": \"%s\",\n", r.path_out.c_str());
  b.Appendf("  \"sequence\": %llu,\n", (unsigned long long)r.sequence);
  b.Appendf("  \"refs\": %llu,\n", (unsigned long long)r.refs);
  b.Appendf("  \"new_nodes\": %llu,\n", (unsigned long long)r.new_nodes);
  b.Appendf("  \"removed_nodes\": %llu,\n",
            (unsigned long long)r.removed_nodes);
  b.Appendf("  \"removed_triples\": %llu,\n",
            (unsigned long long)r.removed_triples);
  b.Appendf("  \"added_triples\": %llu,\n",
            (unsigned long long)r.added_triples);
  b.Appendf("  \"fragment_bytes\": %llu,\n",
            (unsigned long long)r.file_bytes);
  b.Appendf("  \"build_ms\": %.2f,\n", r.build_ms);
  b.Appendf("  \"write_ms\": %.2f\n", r.write_ms);
  b.Appendf("}\n");
  return b.Take();
}

std::string UpdatesToText(const UpdatesResponse& r) {
  JsonBuf b;
  b.Appendf("wrote update fragment %s (%llu bytes, seq %llu)\n",
            r.path_out.c_str(), (unsigned long long)r.file_bytes,
            (unsigned long long)r.sequence);
  b.Appendf("  base            : %s [%s] %zu nodes, %zu triples\n",
            r.path_base.c_str(), r.kind_base.c_str(), r.nodes_base,
            r.triples_base);
  b.Appendf("  next            : %s [%s] %zu nodes, %zu triples\n",
            r.path_next.c_str(), r.kind_next.c_str(), r.nodes_next,
            r.triples_next);
  b.Appendf("  change          : +%llu -%llu triples, +%llu -%llu nodes"
            " (%llu refs)\n",
            (unsigned long long)r.added_triples,
            (unsigned long long)r.removed_triples,
            (unsigned long long)r.new_nodes,
            (unsigned long long)r.removed_nodes,
            (unsigned long long)r.refs);
  b.Appendf("  build %.1f ms, write %.1f ms\n", r.build_ms, r.write_ms);
  return b.Take();
}

// ------------------------------------------------------------- dispatch

const char* UsageText() {
  return
      "usage: rdfalign <command> [args]\n"
      "\n"
      "commands:\n"
      "  build <input> <output.snap> [--format=auto|ntriples|turtle]\n"
      "       [--threads=N]\n"
      "      parse an RDF text file and write a binary snapshot\n"
      "  info <file> [--json]\n"
      "      print header, sections, and statistics of a snapshot,\n"
      "      delta, archive, or update-fragment file (sniffed by\n"
      "      magic); --json also reports the content fingerprint\n"
      "  align <a> <b> [--method=M] [--threads=N] [--mmap] [--json]\n"
      "      align two graphs (snapshot or RDF text each) and report\n"
      "      methods: trivial deblank hybrid hybrid-contextual overlap\n"
      "      (default hybrid; --threads=0 uses all hardware threads)\n"
      "  diff <base> <next> <out.delta> [--method=M] [--threads=N]\n"
      "       [--mmap] [--json]\n"
      "      align two versions and write the incremental binary delta\n"
      "  patch <base> <delta> <out.snap> [--threads=N] [--mmap] [--json]\n"
      "      reconstruct the next version from base + delta and write it\n"
      "      as a snapshot (exit 2 when the delta does not fit the base)\n"
      "  archive <out.archive> <v1> <v2> ... [--method=M] [--threads=N]\n"
      "       [--mmap] [--json]\n"
      "      append versions into an interval archive and persist it as\n"
      "      a base snapshot plus a delta chain\n"
      "  gen <out-prefix> [--scale=S] [--versions=K] [--seed=N]\n"
      "      generate a synthetic category-graph version chain as\n"
      "      <out-prefix>1.nt, <out-prefix>2.nt, ...\n"
      "  cache <stats|clear> [--json]\n"
      "      inspect or drop the resident snapshot cache (rdfalignd)\n"
      "  updates <base> <next> <out.upd> [--seq=N] [--threads=N]\n"
      "       [--mmap] [--json]\n"
      "      write the label-addressed update fragment turning base into\n"
      "      next, for replay against a streaming session (docs/stream.md)\n"
      "  client <host:port|port> <command> [args]\n"
      "      run any command above on a running rdfalignd instead of\n"
      "      in-process (same arguments, same output, same exit code)\n"
      "  stream <host:port|port> <source> <target> --updates=u1[,u2,...]\n"
      "       [--method=trivial|deblank] [--threads=N] [--check=final]\n"
      "       [--json]\n"
      "      open a streaming alignment session on a running rdfalignd,\n"
      "      push each update fragment (printing the alignment delta),\n"
      "      optionally check batch equivalence against a final snapshot\n"
      "  stats [--json]  (via `rdfalign client <endpoint> stats`)\n"
      "      per-verb request/error counters and latency percentiles of a\n"
      "      running rdfalignd\n"
      "\n"
      "every command also accepts --no-verify-checksums (skip section\n"
      "checksum verification on loads; structural validation still runs);\n"
      "writing commands (build, diff, patch, archive, updates) also accept\n"
      "--no-dict-compress (write the raw version-1 dictionary layout\n"
      "instead of the front-coded version-2 default)\n";
}

namespace {

/// Renders the chosen presentation and finishes `result`.
template <typename Response>
void Finish(VerbResult* result, const Response& resp, bool json,
            std::string (*to_json)(const Response&),
            std::string (*to_text)(const Response&)) {
  result->output = json ? to_json(resp) : to_text(resp);
}

}  // namespace

VerbResult ExecuteVerb(const std::vector<std::string>& tokens,
                       GraphSource* source, bool force_json) {
  VerbResult result;
  if (tokens.empty()) {
    result.exit_code = 2;
    result.usage_error = true;
    return result;
  }
  const std::string& verb = tokens[0];
  result.verb = verb;
  const Args args(std::vector<std::string>(tokens.begin() + 1, tokens.end()));
  ParseError parse_error;

  auto parse_failed = [&result, &parse_error]() {
    result.exit_code = 2;
    result.usage_error = parse_error.usage;
    result.error = parse_error.message;
    return result;
  };
  auto run_failed = [&result](const char* name, const Status& st,
                              int exit_code) {
    result.exit_code = exit_code;
    result.error = std::string("rdfalign ") + name + ": " + st.ToString();
    return result;
  };

  if (verb == "build") {
    BuildRequest req;
    if (!ParseBuildRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    BuildResponse resp;
    Status st = RunBuild(req, &resp);
    if (!st.ok()) return run_failed("build", st, 1);
    Finish(&result, resp, req.common.json, BuildToJson, BuildToText);
    return result;
  }
  if (verb == "info") {
    InfoRequest req;
    if (!ParseInfoRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) {
      req.common.json = true;
      req.with_fingerprint = true;
    }
    req.source = source;
    InfoResponse resp;
    Status st = RunInfo(req, &resp);
    result.cache_hits = resp.cache_hits;
    result.cache_misses = resp.cache_misses;
    if (!st.ok()) return run_failed("info", st, 1);
    Finish(&result, resp, req.common.json, InfoToJson, InfoToText);
    return result;
  }
  if (verb == "align") {
    AlignRequest req;
    if (!ParseAlignRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    req.source = source;
    AlignResponse resp;
    Status st = RunAlign(req, &resp);
    result.cache_hits = resp.cache_hits;
    result.cache_misses = resp.cache_misses;
    if (!st.ok()) return run_failed("align", st, 1);
    Finish(&result, resp, req.common.json, AlignToJson, AlignToText);
    return result;
  }
  if (verb == "diff") {
    DiffRequest req;
    if (!ParseDiffRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    req.source = source;
    DiffResponse resp;
    Status st = RunDiff(req, &resp);
    result.cache_hits = resp.cache_hits;
    result.cache_misses = resp.cache_misses;
    if (!st.ok()) return run_failed("diff", st, 1);
    Finish(&result, resp, req.common.json, DiffToJson, DiffToText);
    return result;
  }
  if (verb == "patch") {
    PatchRequest req;
    if (!ParsePatchRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    req.source = source;
    PatchResponse resp;
    Status st = RunPatch(req, &resp);
    result.cache_hits = resp.cache_hits;
    result.cache_misses = resp.cache_misses;
    if (!st.ok()) {
      // A delta that does not belong to this base (or is no delta at all)
      // is a usage error, distinct from I/O failures and corrupt files.
      return run_failed("patch", st, st.IsInvalidArgument() ? 2 : 1);
    }
    Finish(&result, resp, req.common.json, PatchToJson, PatchToText);
    return result;
  }
  if (verb == "archive") {
    ArchiveRequest req;
    if (!ParseArchiveRequest(args, &req, &parse_error)) {
      return parse_failed();
    }
    if (force_json) req.common.json = true;
    req.source = source;
    ArchiveResponse resp;
    Status st = RunArchive(req, &resp);
    result.cache_hits = resp.cache_hits;
    result.cache_misses = resp.cache_misses;
    if (!st.ok()) return run_failed("archive", st, 1);
    Finish(&result, resp, req.common.json, ArchiveToJson, ArchiveToText);
    return result;
  }
  if (verb == "gen") {
    GenRequest req;
    if (!ParseGenRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    GenResponse resp;
    Status st = RunGen(req, &resp);
    if (!st.ok()) {
      // Versions written before the failure are still reported (the
      // historical CLI printed them as it went).
      if (!req.common.json) result.output = GenToText(resp);
      return run_failed("gen", st, 1);
    }
    Finish(&result, resp, req.common.json, GenToJson, GenToText);
    return result;
  }
  if (verb == "cache") {
    CacheRequest req;
    if (!ParseCacheRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    req.source = source;
    CacheResponse resp;
    Status st = RunCache(req, &resp);
    if (!st.ok()) return run_failed("cache", st, 1);
    Finish(&result, resp, req.common.json, CacheToJson, CacheToText);
    return result;
  }
  if (verb == "updates") {
    UpdatesRequest req;
    if (!ParseUpdatesRequest(args, &req, &parse_error)) return parse_failed();
    if (force_json) req.common.json = true;
    req.source = source;
    UpdatesResponse resp;
    Status st = RunUpdates(req, &resp);
    result.cache_hits = resp.cache_hits;
    result.cache_misses = resp.cache_misses;
    if (!st.ok()) return run_failed("updates", st, 1);
    Finish(&result, resp, req.common.json, UpdatesToJson, UpdatesToText);
    return result;
  }
  if (verb == "stats" || verb == "stream") {
    // Both exist only where there is a live daemon holding the state —
    // request metrics for `stats`, a per-connection streaming session for
    // `stream` — so the in-process dispatcher can only point elsewhere.
    result.exit_code = 1;
    result.error = "rdfalign " + verb + ": only available on a running " +
                   "rdfalignd (use rdfalign " +
                   (verb == "stats" ? "client <endpoint> stats"
                                    : "stream <endpoint> ...") +
                   ")";
    return result;
  }
  result.exit_code = 2;
  result.usage_error = true;
  result.error = "rdfalign: unknown command '" + verb + "'";
  return result;
}

}  // namespace rdfalign::service
