// Shared flag parsing of the verb layer: one Args tokenizer and one
// ParseCommonFlags for the options every verb understands, used verbatim
// by the `rdfalign` CLI, the `rdfalignd` daemon's request decoder, and the
// in-process tests — so the three front ends cannot drift. Error messages
// are produced here as strings (the CLI prints them to stderr, the daemon
// returns them in the response envelope) and are pinned byte-for-byte by
// tests/verbs_test.cc: changing one changes the CLI's exit-2 output that
// the cli-smoke CI job exercises.

#ifndef RDFALIGN_SERVICE_FLAGS_H_
#define RDFALIGN_SERVICE_FLAGS_H_

#include <cstddef>
#include <initializer_list>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace rdfalign::service {

/// `--name=value` / `--name` flags mixed with positional arguments.
/// (Moved out of tools/rdfalign.cc so every front end tokenizes alike.)
class Args {
 public:
  /// Parses `argv[start..argc)`.
  Args(int argc, char** argv, int start);

  /// Parses an already tokenized argument vector (the daemon's request
  /// decoder and the tests).
  explicit Args(const std::vector<std::string>& tokens);

  const std::vector<std::string>& positional() const { return positional_; }

  bool Has(const std::string& name) const { return flags_.count(name) > 0; }

  std::string GetString(const std::string& name,
                        const std::string& fallback) const;

  // Signed so that callers see "--versions=-1" as -1 and can reject it
  // with a range error, instead of a wrapped ~2^64 surprise. Malformed
  // values ("--threads=1o", "--seed=abc") are reported into `error` and
  // become nullopt rather than silently parsing as a prefix or zero.
  std::optional<long long> GetInt(const std::string& name, long long fallback,
                                  std::string* error) const;

  double GetDouble(const std::string& name, double fallback) const;

  /// Flags this command does not understand -> usage error (message into
  /// `error`, caller prints usage and exits 2).
  bool OnlyKnown(std::initializer_list<const char*> known,
                 std::string* error) const;

 private:
  void Tokenize(const std::vector<std::string>& tokens);

  std::vector<std::string> positional_;
  std::map<std::string, std::string> flags_;
};

/// The options shared by every verb, consolidated out of the former
/// per-subcommand flag plumbing. `json` selects which renderer the
/// dispatcher uses; the Run* implementations themselves never read it,
/// so a response can always be re-rendered either way.
struct CommonOptions {
  size_t threads = 1;           ///< 0 = all hardware threads
  bool use_mmap = false;        ///< map snapshots instead of buffering
  bool verify_checksums = true; ///< --no-verify-checksums clears this
  bool json = false;
  /// --no-dict-compress clears this: writing verbs then emit the raw
  /// version-1 dictionary layout instead of the front-coded version-2
  /// default (store::StoreWriteOptions::compress_dict). Read verbs
  /// ignore it — both layouts always load.
  bool compress_dict = true;
};

/// Parses --threads / --mmap / --json / --no-verify-checksums /
/// --no-dict-compress into `out`. `cmd` names the verb in error messages
/// ("rdfalign align: ..."). Returns false with the exact legacy message
/// in `error`.
bool ParseCommonFlags(const Args& args, const char* cmd, CommonOptions* out,
                      std::string* error);

/// The common flag names, for OnlyKnown lists:
/// {"threads", "mmap", "json", "no-verify-checksums"}.
extern const char* const kCommonFlagNames[4];

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_FLAGS_H_
