#include "service/flags.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

namespace rdfalign::service {

const char* const kCommonFlagNames[4] = {"threads", "mmap", "json",
                                         "no-verify-checksums"};

Args::Args(int argc, char** argv, int start) {
  std::vector<std::string> tokens;
  for (int i = start; i < argc; ++i) tokens.emplace_back(argv[i]);
  Tokenize(tokens);
}

Args::Args(const std::vector<std::string>& tokens) { Tokenize(tokens); }

void Args::Tokenize(const std::vector<std::string>& tokens) {
  for (const std::string& arg : tokens) {
    if (arg.rfind("--", 0) == 0) {
      size_t eq = arg.find('=');
      if (eq == std::string::npos) {
        flags_[arg.substr(2)] = "";
      } else {
        flags_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

std::string Args::GetString(const std::string& name,
                            const std::string& fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::optional<long long> Args::GetInt(const std::string& name,
                                      long long fallback,
                                      std::string* error) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(it->second.c_str(), &end, 10);
  if (it->second.empty() || *end != '\0' || errno == ERANGE) {
    if (error) {
      *error = "rdfalign: --" + name + " expects an integer, got '" +
               it->second + "'";
    }
    return std::nullopt;
  }
  return value;
}

double Args::GetDouble(const std::string& name, double fallback) const {
  auto it = flags_.find(name);
  return it == flags_.end() ? fallback : std::atof(it->second.c_str());
}

bool Args::OnlyKnown(std::initializer_list<const char*> known,
                     std::string* error) const {
  for (const auto& [name, value] : flags_) {
    bool ok = false;
    for (const char* k : known) ok = ok || name == k;
    if (!ok) {
      if (error) *error = "rdfalign: unknown flag --" + name;
      return false;
    }
  }
  return true;
}

bool ParseCommonFlags(const Args& args, const char* cmd, CommonOptions* out,
                      std::string* error) {
  const std::optional<long long> threads = args.GetInt("threads", 1, error);
  if (!threads) return false;
  if (*threads < 0 || *threads > 4096) {
    if (error) {
      *error = std::string("rdfalign ") + cmd +
               ": --threads must be in [0, 4096]";
    }
    return false;
  }
  out->threads = static_cast<size_t>(*threads);
  out->use_mmap = args.Has("mmap");
  out->verify_checksums = !args.Has("no-verify-checksums");
  out->json = args.Has("json");
  out->compress_dict = !args.Has("no-dict-compress");
  return true;
}

}  // namespace rdfalign::service
