// The one JSON serializer of the verb layer. Every --json report the CLI
// prints and every response body the daemon frames is built through
// JsonBuf, so the two wire formats are a single code path (the api
// redesign invariant: tools/rdfalign.cc holds no serialization logic).
//
// JsonBuf is a formatting buffer, not a DOM: responses are small and their
// field order is part of the pinned output (cli-smoke greps
// `^  "triples":`-style anchors), so the serializer appends fields in
// declaration order with the exact printf formats the CLI historically
// used.

#ifndef RDFALIGN_SERVICE_JSON_H_
#define RDFALIGN_SERVICE_JSON_H_

#include <cstdarg>
#include <cstdint>
#include <string>

namespace rdfalign::service {

/// printf-style JSON accumulation.
class JsonBuf {
 public:
  /// Appends printf-formatted text.
  void Appendf(const char* format, ...) __attribute__((format(printf, 2, 3)));

  /// Appends raw text verbatim.
  void Append(const std::string& text) { out_ += text; }

  const std::string& str() const { return out_; }
  std::string Take() { return std::move(out_); }

 private:
  std::string out_;
};

/// Escapes a string for embedding inside a JSON string literal
/// (backslash, quote, and control characters).
std::string JsonEscape(const std::string& s);

/// Scans `json` for `"key": <integer>` and returns the integer, or
/// `fallback` when absent. This is the only "parsing" the service client
/// does — the envelope is produced by BuildEnvelope in this process
/// family, so a field scan is exact, not heuristic.
long long JsonFindInt(const std::string& json, const std::string& key,
                      long long fallback);

/// Scans `json` for `"key": "<value>"` and returns the (unescaped) value,
/// or `fallback` when absent.
std::string JsonFindString(const std::string& json, const std::string& key,
                           const std::string& fallback);

/// Scans `json` for `"key": true|false`; `fallback` when absent.
bool JsonFindBool(const std::string& json, const std::string& key,
                  bool fallback);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_JSON_H_
