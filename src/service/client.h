// Client side of the rdfalignd protocol, plus the `rdfalign client`
// subcommand built on it: forward a verb invocation to a running daemon
// and reproduce exactly what the in-process CLI would have printed and
// returned.

#ifndef RDFALIGN_SERVICE_CLIENT_H_
#define RDFALIGN_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace rdfalign::service {

/// Resilience knobs for a client connection. Defaults reproduce the
/// original behavior: block forever, never retry.
struct ClientOptions {
  /// Connect + per-frame I/O deadline in ms; 0 blocks forever.
  int timeout_ms = 0;
  /// Extra attempts after a failure (connect always; requests only via
  /// CallIdempotent — write verbs are never retried automatically).
  int retries = 0;
  /// Base of the jittered exponential backoff between attempts.
  int retry_backoff_ms = 100;
};

/// One decoded daemon response (envelope + body).
struct ClientResponse {
  bool ok = false;
  int exit_code = 0;
  bool usage_error = false;
  std::string verb;
  std::string error;  ///< failure message (empty on success)
  std::string body;   ///< the CLI-identical rendered output
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// A persistent connection to one rdfalignd.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost"). With
  /// options.retries > 0 a failed connect is retried with jittered
  /// exponential backoff; options.timeout_ms bounds each attempt and all
  /// later frame I/O on the connection.
  static Result<Client> Connect(const std::string& host, int port,
                                const ClientOptions& options = {});

  /// Sends one verb invocation (verb first, args as the CLI would see
  /// them) and reads the response pair.
  Result<ClientResponse> Call(const std::vector<std::string>& tokens);

  /// Like Call, but follows the request frame with one binary payload
  /// frame — the `stream push` shape (the payload is an RDFUPDT1 update
  /// fragment; see docs/stream.md).
  Result<ClientResponse> CallWithPayload(
      const std::vector<std::string>& tokens, const std::string& payload);

  /// Call for idempotent verbs only (info, align, cache, stats): a
  /// transport failure reconnects to the same endpoint and re-sends the
  /// request, up to options.retries times with jittered backoff. Never
  /// use for verbs with side effects — a retry could apply them twice.
  Result<ClientResponse> CallIdempotent(
      const std::vector<std::string>& tokens);

  /// Drops the current connection (if any) and dials the endpoint that
  /// Connect recorded. One attempt; the caller owns the retry policy.
  Status Reconnect();

  void Close();
  bool connected() const { return fd_ >= 0; }
  const ClientOptions& options() const { return options_; }

 private:
  Result<ClientResponse> ReadResponse();

  int fd_ = -1;
  std::string host_;
  int port_ = 0;
  ClientOptions options_;
};

/// True when `verb` (the first forwarded token) is read-only and safe to
/// auto-retry through CallIdempotent.
bool IsIdempotentVerb(const std::string& verb);

/// Jittered exponential backoff: a uniformly random delay in
/// [1, base * 2^attempt], capped at 5s. Exposed for the retry loops in
/// client.cc and the fault-injection tests.
int RetryBackoffMs(int base_ms, int attempt);

/// Splits "host:port" or bare "port" (host defaults to 127.0.0.1).
/// InvalidArgument when the port is not a number in [1, 65535].
Status ParseEndpoint(const std::string& spec, std::string* host, int* port);

/// The `rdfalign client <endpoint> <verb> [args]` subcommand: one call,
/// body to stdout, error to stderr, the daemon's exit code returned.
/// `tokens` is the full CLI token list starting at "client".
int RunClientCommand(const std::vector<std::string>& tokens);

/// The `rdfalign stream <endpoint> <source> <target>
/// --updates=u1[,u2,...] [--method=M] [--check=final] [--json]`
/// subcommand: one connection, one streaming session — open, push every
/// update fragment (printing each emitted alignment delta), optionally
/// verify batch equivalence against a final snapshot, close. Returns the
/// first failing exit code, 0 when the whole session succeeds. `tokens`
/// is the full CLI token list starting at "stream".
int RunStreamCommand(const std::vector<std::string>& tokens);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_CLIENT_H_
