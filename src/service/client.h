// Client side of the rdfalignd protocol, plus the `rdfalign client`
// subcommand built on it: forward a verb invocation to a running daemon
// and reproduce exactly what the in-process CLI would have printed and
// returned.

#ifndef RDFALIGN_SERVICE_CLIENT_H_
#define RDFALIGN_SERVICE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"

namespace rdfalign::service {

/// One decoded daemon response (envelope + body).
struct ClientResponse {
  bool ok = false;
  int exit_code = 0;
  bool usage_error = false;
  std::string verb;
  std::string error;  ///< failure message (empty on success)
  std::string body;   ///< the CLI-identical rendered output
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
};

/// A persistent connection to one rdfalignd.
class Client {
 public:
  Client() = default;
  ~Client();

  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects to host:port (IPv4 dotted quad or "localhost").
  static Result<Client> Connect(const std::string& host, int port);

  /// Sends one verb invocation (verb first, args as the CLI would see
  /// them) and reads the response pair.
  Result<ClientResponse> Call(const std::vector<std::string>& tokens);

  /// Like Call, but follows the request frame with one binary payload
  /// frame — the `stream push` shape (the payload is an RDFUPDT1 update
  /// fragment; see docs/stream.md).
  Result<ClientResponse> CallWithPayload(
      const std::vector<std::string>& tokens, const std::string& payload);

  void Close();
  bool connected() const { return fd_ >= 0; }

 private:
  Result<ClientResponse> ReadResponse();

  int fd_ = -1;
};

/// Splits "host:port" or bare "port" (host defaults to 127.0.0.1).
/// InvalidArgument when the port is not a number in [1, 65535].
Status ParseEndpoint(const std::string& spec, std::string* host, int* port);

/// The `rdfalign client <endpoint> <verb> [args]` subcommand: one call,
/// body to stdout, error to stderr, the daemon's exit code returned.
/// `tokens` is the full CLI token list starting at "client".
int RunClientCommand(const std::vector<std::string>& tokens);

/// The `rdfalign stream <endpoint> <source> <target>
/// --updates=u1[,u2,...] [--method=M] [--check=final] [--json]`
/// subcommand: one connection, one streaming session — open, push every
/// update fragment (printing each emitted alignment delta), optionally
/// verify batch equivalence against a final snapshot, close. Returns the
/// first failing exit code, 0 when the whole session succeeds. `tokens`
/// is the full CLI token list starting at "stream".
int RunStreamCommand(const std::vector<std::string>& tokens);

}  // namespace rdfalign::service

#endif  // RDFALIGN_SERVICE_CLIENT_H_
