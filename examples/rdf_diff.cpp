// rdf_diff: a command-line differ for RDF files built on the alignment
// library. Parses two N-Triples (or Turtle) files, aligns them with the
// chosen method, and prints a delta: added/removed triples and discovered
// URI renames.
//
//   $ ./rdf_diff old.nt new.nt [--method=overlap] [--theta=0.65]
//   $ ./rdf_diff --demo          # runs on built-in sample data

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/aligner.h"
#include "core/delta.h"
#include "parser/ntriples_parser.h"
#include "parser/turtle_parser.h"
#include "util/string_util.h"

using namespace rdfalign;

namespace {

constexpr char kDemoV1[] = R"(# demo: version 1
<http://data.example/dept/cs> <http://schema.example/name> "School of Informatics" .
<http://data.example/dept/cs> <http://schema.example/city> "Edinburgh" .
<http://data.example/person/opb> <http://schema.example/worksFor> <http://data.example/dept/cs> .
<http://data.example/person/opb> <http://schema.example/name> "Peter Buneman" .
_:addr <http://schema.example/zip> "EH8 9AB" .
_:addr <http://schema.example/city> "Edinburgh" .
<http://data.example/person/opb> <http://schema.example/address> _:addr .
)";

constexpr char kDemoV2[] = R"(# demo: version 2 — dept renamed, typo fixed, phone added
<http://data.example/org/informatics> <http://schema.example/name> "School of Informatics" .
<http://data.example/org/informatics> <http://schema.example/city> "Edinburgh" .
<http://data.example/person/opb> <http://schema.example/worksFor> <http://data.example/org/informatics> .
<http://data.example/person/opb> <http://schema.example/name> "Peter Buneman" .
<http://data.example/person/opb> <http://schema.example/phone> "0131 650 1000" .
_:a1 <http://schema.example/zip> "EH8 9AB" .
_:a1 <http://schema.example/city> "Edinburgh" .
<http://data.example/person/opb> <http://schema.example/address> _:a1 .
)";

void PrintTerm(const TripleGraph& g, NodeId n) {
  switch (g.KindOf(n)) {
    case TermKind::kUri:
      std::printf("<%s>", std::string(g.Lexical(n)).c_str());
      break;
    case TermKind::kLiteral:
      std::printf("\"%s\"", std::string(g.Lexical(n)).c_str());
      break;
    case TermKind::kBlank:
      std::printf("_:%s", std::string(g.Lexical(n)).c_str());
      break;
  }
}

void PrintTriple(const TripleGraph& g, const Triple& t, const char* sign) {
  std::printf("%s ", sign);
  PrintTerm(g, t.s);
  std::printf(" ");
  PrintTerm(g, t.p);
  std::printf(" ");
  PrintTerm(g, t.o);
  std::printf(" .\n");
}

Result<TripleGraph> ParseAny(const std::string& path,
                             std::shared_ptr<Dictionary> dict) {
  if (EndsWith(path, ".ttl")) return ParseTurtleFile(path, std::move(dict));
  return ParseNTriplesFile(path, std::move(dict));
}

}  // namespace

int main(int argc, char** argv) {
  std::string method_name = "overlap";
  double theta = 0.65;
  std::vector<std::string> paths;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--demo") {
      demo = true;
    } else if (a.rfind("--method=", 0) == 0) {
      method_name = a.substr(9);
    } else if (a.rfind("--theta=", 0) == 0) {
      theta = std::atof(a.substr(8).c_str());
    } else {
      paths.push_back(a);
    }
  }
  if (!demo && paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: rdf_diff OLD.nt NEW.nt [--method=trivial|deblank|"
                 "hybrid|overlap] [--theta=T]\n       rdf_diff --demo\n");
    return 2;
  }

  auto dict = std::make_shared<Dictionary>();
  Result<TripleGraph> g1 = demo ? ParseNTriplesString(kDemoV1, dict)
                                : ParseAny(paths[0], dict);
  Result<TripleGraph> g2 = demo ? ParseNTriplesString(kDemoV2, dict)
                                : ParseAny(paths[1], dict);
  if (!g1.ok()) {
    std::fprintf(stderr, "error parsing first graph: %s\n",
                 g1.status().ToString().c_str());
    return 1;
  }
  if (!g2.ok()) {
    std::fprintf(stderr, "error parsing second graph: %s\n",
                 g2.status().ToString().c_str());
    return 1;
  }

  AlignerOptions options;
  if (method_name == "trivial") {
    options.method = AlignMethod::kTrivial;
  } else if (method_name == "deblank") {
    options.method = AlignMethod::kDeblank;
  } else if (method_name == "hybrid") {
    options.method = AlignMethod::kHybrid;
  } else if (method_name == "overlap") {
    options.method = AlignMethod::kOverlap;
    options.overlap.theta = theta;
  } else {
    std::fprintf(stderr, "unknown method: %s\n", method_name.c_str());
    return 2;
  }

  auto cg = CombinedGraph::Build(*g1, *g2);
  if (!cg.ok()) {
    std::fprintf(stderr, "%s\n", cg.status().ToString().c_str());
    return 1;
  }
  AlignmentOutcome out = Aligner(options).AlignCombined(*cg);
  RdfDelta delta = ComputeDelta(*cg, out.partition);

  std::printf("# method=%s  aligned-edge ratio=%.3f  (%s)\n",
              method_name.c_str(), out.edge_stats.Ratio(),
              DeltaSummary(delta).c_str());
  for (const UriRename& r : delta.renamed_uris) {
    std::printf("~ <%s> -> <%s>\n", r.source_uri.c_str(),
                r.target_uri.c_str());
  }
  const TripleGraph& g = cg->graph();
  for (const Triple& t : delta.deleted) PrintTriple(g, t, "-");
  for (const Triple& t : delta.added) PrintTriple(g, t, "+");
  return 0;
}
