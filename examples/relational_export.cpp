// Relational-export scenario (the paper's GtoPdb study, §5.2): a curated
// relational database evolves; each version is exported to RDF via the W3C
// Direct Mapping under a *different* URI prefix, so no URIs are shared and
// only structural alignment can reconnect the versions. Persistent primary
// keys provide exact ground truth.
//
//   $ ./relational_export [--ligands=N] [--seed=S]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/aligner.h"
#include "gen/gtopdb_gen.h"
#include "gen/ground_truth.h"
#include "rdf/statistics.h"

using namespace rdfalign;

namespace {

uint64_t FlagInt(int argc, char** argv, const std::string& name,
                 uint64_t fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) {
      return static_cast<uint64_t>(std::atoll(a.substr(prefix.size()).c_str()));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  gen::GtoPdbOptions options;
  options.num_ligands = FlagInt(argc, argv, "ligands", 300);
  options.versions = 2;
  options.seed = FlagInt(argc, argv, "seed", 7);

  std::printf("building pharmacology database (%zu ligands) and evolving "
              "one version step...\n",
              options.num_ligands);
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);
  for (size_t v = 0; v < 2; ++v) {
    std::printf("  version %zu: %zu rows\n", v + 1,
                chain.versions[v].TotalRows());
  }

  auto dict = std::make_shared<Dictionary>();
  auto g1 = gen::ExportGtoPdbVersion(chain.versions[0], 0, dict);
  auto g2 = gen::ExportGtoPdbVersion(chain.versions[1], 1, dict);
  if (!g1.ok() || !g2.ok()) {
    std::fprintf(stderr, "export failed\n");
    return 1;
  }
  GraphStatistics s1 = ComputeStatistics(*g1);
  GraphStatistics s2 = ComputeStatistics(*g2);
  std::printf("exported: v1 %zu triples (%zu URIs, %zu literals), "
              "v2 %zu triples\n",
              s1.edges, s1.uris, s1.literals, s2.edges);
  std::printf("URI prefixes: %s vs %s — no shared identifiers.\n\n",
              gen::GtoPdbVersionPrefix(0).c_str(),
              gen::GtoPdbVersionPrefix(1).c_str());

  auto cg = CombinedGraph::Build(*g1, *g2).value();
  gen::GroundTruth gt = gen::RelationalGroundTruth(
      chain.versions[0], *g1, 0, chain.versions[1], *g2, 1);
  std::printf("ground truth: %zu node pairs (by table + persistent key)\n\n",
              gt.NumPairs());

  std::printf("%-10s %8s %10s %8s %8s %8s %8s\n", "method", "exact",
              "inclusive", "false", "missing", "exact%", "sec");
  for (AlignMethod m : {AlignMethod::kTrivial, AlignMethod::kHybrid,
                        AlignMethod::kOverlap}) {
    AlignerOptions o;
    o.method = m;
    AlignmentOutcome out = Aligner(o).AlignCombined(cg);
    gen::PrecisionStats stats = gen::EvaluatePrecision(cg, out.partition, gt);
    std::printf("%-10s %8zu %10zu %8zu %8zu %7.1f%% %8.3f\n",
                std::string(AlignMethodToString(m)).c_str(), stats.exact,
                stats.inclusive, stats.false_matches, stats.missing,
                100.0 * stats.ExactRate(), out.seconds);
  }
  std::printf("\n(trivial aligns nothing but rdf:type and shared literals; "
              "overlap reconnects the renamed key space)\n");
  return 0;
}
