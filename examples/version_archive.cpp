// Version-archive scenario (§6 future work): use alignments to store many
// versions of an evolving RDF graph compactly, decorating each triple with
// the version intervals in which it is present.
//
//   $ ./version_archive [--classes=N] [--versions=K]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/archive.h"
#include "gen/efo_gen.h"

using namespace rdfalign;

namespace {

uint64_t FlagInt(int argc, char** argv, const std::string& name,
                 uint64_t fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) {
      return static_cast<uint64_t>(std::atoll(a.substr(prefix.size()).c_str()));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  gen::EfoOptions options;
  options.initial_classes = FlagInt(argc, argv, "classes", 150);
  options.versions = FlagInt(argc, argv, "versions", 8);

  std::printf("archiving a %zu-version ontology chain...\n\n",
              options.versions);
  gen::EfoChain chain = gen::EfoChain::Generate(options);

  VersionArchive archive;  // hybrid alignment chains the entities
  size_t naive = 0;
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    auto appended = archive.Append(chain.Version(v));
    if (!appended.ok()) {
      std::fprintf(stderr, "append failed: %s\n",
                   appended.status().ToString().c_str());
      return 1;
    }
    naive += chain.Version(v).NumEdges();
    ArchiveStats s = archive.Stats();
    std::printf("after version %zu: %zu triple-version pairs stored as "
                "%zu interval records (%.2fx compression)\n",
                v + 1, s.triple_version_pairs, s.interval_records,
                s.CompressionRatio());
  }

  ArchiveStats s = archive.Stats();
  std::printf("\nfinal: %zu versions, %zu distinct entity triples, "
              "%zu entities\n",
              s.versions, s.distinct_triples, s.entities);
  std::printf("naive storage:   %zu triple copies\n", naive);
  std::printf("archive storage: %zu interval records\n", s.interval_records);
  std::printf("compression:     %.2fx\n", s.CompressionRatio());

  // Reconstruct one version and sanity-check the count.
  uint32_t mid = static_cast<uint32_t>(chain.NumVersions() / 2);
  auto at = archive.TriplesAt(mid);
  std::printf("\nreconstructed version %u: %zu entity triples "
              "(graph had %zu node triples)\n",
              mid + 1, at.size(), chain.Version(mid).NumEdges());
  std::printf("(triples enter and leave with their subject, so intervals "
              "compress well — the paper's closing conjecture)\n");
  return 0;
}
