// Ontology evolution scenario (the paper's EFO study, §5.1): generate an
// evolving ontology chain with blank-node reification, literal edits, and a
// staged URI-prefix migration, then watch each alignment method recover
// more of the change history.
//
//   $ ./ontology_evolution [--classes=N] [--versions=K] [--seed=S]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/aligner.h"
#include "core/delta.h"
#include "gen/efo_gen.h"
#include "gen/ground_truth.h"
#include "rdf/statistics.h"

using namespace rdfalign;

namespace {

uint64_t FlagInt(int argc, char** argv, const std::string& name,
                 uint64_t fallback) {
  std::string prefix = "--" + name + "=";
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind(prefix, 0) == 0) {
      return static_cast<uint64_t>(std::atoll(a.substr(prefix.size()).c_str()));
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  gen::EfoOptions options;
  options.initial_classes = FlagInt(argc, argv, "classes", 200);
  options.versions = FlagInt(argc, argv, "versions", 10);
  options.seed = FlagInt(argc, argv, "seed", 11);

  std::printf("generating %zu-version ontology chain (%zu initial "
              "classes)...\n\n",
              options.versions, options.initial_classes);
  gen::EfoChain chain = gen::EfoChain::Generate(options);

  std::printf("%8s %8s %8s %8s %8s\n", "version", "edges", "literals",
              "uris", "blanks");
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    GraphStatistics s = ComputeStatistics(chain.Version(v));
    std::printf("%8zu %8zu %8zu %8zu %8zu\n", v + 1, s.edges, s.literals,
                s.uris, s.blanks);
  }

  std::printf("\naligning consecutive versions:\n");
  std::printf("%6s | %10s %10s %10s %10s | %8s %8s\n", "pair", "trivial",
              "deblank", "hybrid", "overlap", "GT-exact", "renames");
  for (size_t v = 0; v + 1 < chain.NumVersions(); ++v) {
    auto cg = CombinedGraph::Build(chain.Version(v), chain.Version(v + 1))
                  .value();
    double ratios[4];
    Partition overlap_partition;
    int i = 0;
    for (AlignMethod m : {AlignMethod::kTrivial, AlignMethod::kDeblank,
                          AlignMethod::kHybrid, AlignMethod::kOverlap}) {
      AlignerOptions o;
      o.method = m;
      AlignmentOutcome out = Aligner(o).AlignCombined(cg);
      ratios[i++] = out.edge_stats.Ratio();
      if (m == AlignMethod::kOverlap) {
        overlap_partition = std::move(out.partition);
      }
    }
    // Score the overlap alignment against the class-entity ground truth.
    gen::GroundTruth gt = chain.ClassGroundTruth(v, v + 1);
    gen::PrecisionStats stats =
        gen::EvaluatePrecision(cg, overlap_partition, gt);
    RdfDelta delta = ComputeDelta(cg, overlap_partition);
    std::printf("%3zu-%-2zu | %10.3f %10.3f %10.3f %10.3f | %7.1f%% %8zu\n",
                v + 1, v + 2, ratios[0], ratios[1], ratios[2], ratios[3],
                100.0 * stats.ExactRate(), delta.renamed_uris.size());
  }

  std::printf("\nnote the hybrid/overlap jump at the URI-prefix migration "
              "(pair %zu-%zu) — renamed classes need structural identity.\n",
              options.big_migration_version + 1,
              options.big_migration_version + 2);
  return 0;
}
