// Quickstart: build two versions of a tiny RDF graph (the paper's Figure 1
// example), align them with every method, and print what each method finds.
//
//   $ ./quickstart

#include <cstdio>
#include <string>

#include "core/aligner.h"
#include "core/delta.h"
#include "core/hybrid.h"
#include "core/sigma_edit.h"
#include "rdf/graph.h"
#include "rdf/merge.h"

using namespace rdfalign;

namespace {

// Version 1: Slawek's record with a typo'd middle name and the old
// university URI.
TripleGraph BuildVersion1(std::shared_ptr<Dictionary> dict) {
  GraphBuilder b(std::move(dict));
  NodeId ss = b.AddUri("ex:ss");
  NodeId eduni = b.AddUri("ex:ed-uni");
  NodeId address = b.AddBlank("addr");
  b.AddTriple(ss, b.AddUri("ex:address"), address);
  b.AddTriple(ss, b.AddUri("ex:employer"), eduni);
  b.AddTriple(address, b.AddUri("ex:zip"), b.AddLiteral("EH8"));
  b.AddTriple(address, b.AddUri("ex:city"), b.AddLiteral("Edinburgh"));
  b.AddTriple(eduni, b.AddUri("ex:name"),
              b.AddLiteral("University of Edinburgh"));
  b.AddTriple(eduni, b.AddUri("ex:city"), b.AddLiteral("Edinburgh"));
  NodeId name = b.AddBlank("name");
  b.AddTriple(ss, b.AddUri("ex:name"), name);
  b.AddTriple(name, b.AddUri("ex:first"), b.AddLiteral("Slawek"));
  b.AddTriple(name, b.AddUri("ex:middle"), b.AddLiteral("Pawel"));
  b.AddTriple(name, b.AddUri("ex:last"), b.AddLiteral("Staworko"));
  return std::move(b.Build(true)).value();
}

// Version 2: first name corrected, middle name removed, university URI
// renamed — and the blank nodes carry fresh local names.
TripleGraph BuildVersion2(std::shared_ptr<Dictionary> dict) {
  GraphBuilder b(std::move(dict));
  NodeId ss = b.AddUri("ex:ss");
  NodeId uoe = b.AddUri("ex:uoe");
  NodeId address = b.AddBlank("a1");
  b.AddTriple(ss, b.AddUri("ex:address"), address);
  b.AddTriple(ss, b.AddUri("ex:employer"), uoe);
  b.AddTriple(address, b.AddUri("ex:zip"), b.AddLiteral("EH8"));
  b.AddTriple(address, b.AddUri("ex:city"), b.AddLiteral("Edinburgh"));
  b.AddTriple(uoe, b.AddUri("ex:name"),
              b.AddLiteral("University of Edinburgh"));
  b.AddTriple(uoe, b.AddUri("ex:city"), b.AddLiteral("Edinburgh"));
  NodeId name = b.AddBlank("n1");
  b.AddTriple(ss, b.AddUri("ex:name"), name);
  b.AddTriple(name, b.AddUri("ex:first"), b.AddLiteral("Slawomir"));
  b.AddTriple(name, b.AddUri("ex:last"), b.AddLiteral("Staworko"));
  return std::move(b.Build(true)).value();
}

std::string Describe(const TripleGraph& g, NodeId n) {
  switch (g.KindOf(n)) {
    case TermKind::kUri:
      return "<" + std::string(g.Lexical(n)) + ">";
    case TermKind::kLiteral:
      return "\"" + std::string(g.Lexical(n)) + "\"";
    case TermKind::kBlank:
      return "_:" + std::string(g.Lexical(n));
  }
  return "?";
}

}  // namespace

int main() {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph v1 = BuildVersion1(dict);
  TripleGraph v2 = BuildVersion2(dict);
  auto cg = CombinedGraph::Build(v1, v2).value();
  const TripleGraph& g = cg.graph();

  std::printf("version 1: %zu nodes, %zu triples\n", v1.NumNodes(),
              v1.NumEdges());
  std::printf("version 2: %zu nodes, %zu triples\n\n", v2.NumNodes(),
              v2.NumEdges());

  for (AlignMethod method :
       {AlignMethod::kTrivial, AlignMethod::kDeblank, AlignMethod::kHybrid,
        AlignMethod::kOverlap}) {
    AlignerOptions options;
    options.method = method;
    AlignmentOutcome out = Aligner(options).AlignCombined(cg);
    std::printf("--- %s ---\n", std::string(AlignMethodToString(method)).c_str());
    std::printf("aligned-edge ratio: %.2f, aligned classes: %zu\n",
                out.edge_stats.Ratio(), out.node_stats.aligned_classes);
    // Show the non-trivial discoveries: aligned pairs whose labels differ.
    for (auto [a, b] : EnumerateAlignedPairs(cg, out.partition)) {
      bool interesting =
          g.IsBlank(a) || g.LexicalId(a) != g.LexicalId(b);
      if (interesting) {
        std::printf("  %s  ~  %s\n", Describe(g, a).c_str(),
                    Describe(g, b).c_str());
      }
    }
    std::printf("\n");
  }

  // The name records need the similarity measure (σEdit).
  Partition hybrid = HybridPartition(cg);
  auto se = SigmaEdit::Compute(cg, hybrid);
  if (se.ok()) {
    NodeId b2 = g.FindBlank("name");
    NodeId b4 = g.FindBlank("n1");
    std::printf("--- sigma-edit ---\n");
    std::printf("distance(_:name, _:n1) = %.3f  "
                "(the edited name record; bisimulation alone cannot align "
                "it)\n\n",
                se->Distance(b2, b4));
  }

  // And the alignment doubles as a delta.
  AlignerOptions overlap_options;
  overlap_options.method = AlignMethod::kOverlap;
  AlignmentOutcome overlap = Aligner(overlap_options).AlignCombined(cg);
  RdfDelta delta = ComputeDelta(cg, overlap.partition);
  std::printf("--- delta (from the overlap alignment) ---\n%s\n",
              DeltaSummary(delta).c_str());
  for (const UriRename& r : delta.renamed_uris) {
    std::printf("  renamed: %s -> %s\n", r.source_uri.c_str(),
                r.target_uri.c_str());
  }
  return 0;
}
