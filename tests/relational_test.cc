#include <gtest/gtest.h>

#include "relational/database.h"
#include "relational/table.h"
#include "relational/value.h"

namespace rdfalign::relational {
namespace {

TableSchema PersonSchema() {
  return TableSchema{
      .name = "person",
      .columns = {{"person_id", ColumnType::kInteger, false},
                  {"name", ColumnType::kText, false},
                  {"age", ColumnType::kInteger, true}},
      .primary_key = 0,
      .foreign_keys = {}};
}

TableSchema EmploymentSchema() {
  return TableSchema{
      .name = "employment",
      .columns = {{"emp_id", ColumnType::kInteger, false},
                  {"person_id", ColumnType::kInteger, false},
                  {"title", ColumnType::kText, false}},
      .primary_key = 0,
      .foreign_keys = {{1, "person"}}};
}

TEST(ValueTest, LexicalForms) {
  EXPECT_EQ(ValueToLexical(Value{int64_t{42}}), "42");
  EXPECT_EQ(ValueToLexical(Value{std::string("hi")}), "hi");
  EXPECT_EQ(ValueToLexical(Value{Null{}}), "");
  EXPECT_EQ(ValueToLexical(Value{2.5}), "2.5");
  EXPECT_TRUE(IsNull(Value{Null{}}));
  EXPECT_FALSE(IsNull(Value{int64_t{0}}));
}

TEST(TableTest, InsertFindDelete) {
  Table t(PersonSchema());
  ASSERT_TRUE(t.Insert({int64_t{1}, std::string("Ada"), int64_t{36}}).ok());
  ASSERT_TRUE(t.Insert({int64_t{2}, std::string("Bob"), Null{}}).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.MaxKey(), 2);
  const Row* row = t.Find(1);
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(std::get<std::string>((*row)[1]), "Ada");
  ASSERT_TRUE(t.Delete(1).ok());
  EXPECT_EQ(t.Find(1), nullptr);
  EXPECT_EQ(t.NumRows(), 1u);
  EXPECT_TRUE(t.Delete(1).IsNotFound());
}

TEST(TableTest, RejectsBadRows) {
  Table t(PersonSchema());
  // Wrong arity.
  EXPECT_TRUE(t.Insert({int64_t{1}}).IsInvalidArgument());
  // Duplicate key.
  ASSERT_TRUE(t.Insert({int64_t{1}, std::string("Ada"), Null{}}).ok());
  EXPECT_TRUE(
      t.Insert({int64_t{1}, std::string("Eve"), Null{}}).IsAlreadyExists());
  // Type mismatch.
  EXPECT_TRUE(t.Insert({int64_t{2}, int64_t{5}, Null{}}).IsInvalidArgument());
  // NULL in non-nullable column.
  EXPECT_TRUE(t.Insert({int64_t{3}, Null{}, Null{}}).IsInvalidArgument());
}

TEST(TableTest, UpdateCell) {
  Table t(PersonSchema());
  ASSERT_TRUE(t.Insert({int64_t{1}, std::string("Ada"), int64_t{36}}).ok());
  ASSERT_TRUE(t.UpdateCell(1, 1, Value{std::string("Ada L.")}).ok());
  EXPECT_EQ(std::get<std::string>((*t.Find(1))[1]), "Ada L.");
  // PK updates are rejected (keys are persistent).
  EXPECT_TRUE(t.UpdateCell(1, 0, Value{int64_t{9}}).IsInvalidArgument());
  EXPECT_TRUE(t.UpdateCell(99, 1, Value{std::string("x")}).IsNotFound());
  // Type checking applies to updates too.
  EXPECT_TRUE(t.UpdateCell(1, 1, Value{int64_t{1}}).IsInvalidArgument());
}

TEST(TableTest, CompactReclaimsTombstones) {
  Table t(PersonSchema());
  for (int64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE(t.Insert({k, std::string("p") + std::to_string(k),
                          Null{}}).ok());
  }
  for (int64_t k = 1; k <= 5; ++k) ASSERT_TRUE(t.Delete(k).ok());
  t.Compact();
  EXPECT_EQ(t.NumRows(), 5u);
  EXPECT_EQ(t.Find(3), nullptr);
  ASSERT_NE(t.Find(7), nullptr);
  EXPECT_EQ(t.Keys().size(), 5u);
}

TEST(DatabaseTest, ForeignKeyEnforcement) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  ASSERT_TRUE(db.CreateTable(EmploymentSchema()).ok());
  ASSERT_TRUE(db.Insert("person",
                        {int64_t{1}, std::string("Ada"), Null{}}).ok());
  // Valid reference.
  ASSERT_TRUE(db.Insert("employment", {int64_t{1}, int64_t{1},
                                       std::string("Engineer")}).ok());
  // Dangling reference rejected.
  EXPECT_TRUE(db.Insert("employment", {int64_t{2}, int64_t{99},
                                       std::string("Ghost")})
                  .IsInvalidArgument());
  EXPECT_TRUE(db.ValidateIntegrity().ok());
}

TEST(DatabaseTest, CascadingDelete) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  ASSERT_TRUE(db.CreateTable(EmploymentSchema()).ok());
  ASSERT_TRUE(db.Insert("person",
                        {int64_t{1}, std::string("Ada"), Null{}}).ok());
  ASSERT_TRUE(db.Insert("person",
                        {int64_t{2}, std::string("Bob"), Null{}}).ok());
  ASSERT_TRUE(db.Insert("employment", {int64_t{1}, int64_t{1},
                                       std::string("Engineer")}).ok());
  ASSERT_TRUE(db.Insert("employment", {int64_t{2}, int64_t{2},
                                       std::string("Writer")}).ok());
  ASSERT_TRUE(db.DeleteCascade("person", 1).ok());
  EXPECT_EQ(db.GetTable("person")->NumRows(), 1u);
  EXPECT_EQ(db.GetTable("employment")->NumRows(), 1u);
  EXPECT_TRUE(db.ValidateIntegrity().ok());
}

TEST(DatabaseTest, CreateTableValidation) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  EXPECT_TRUE(db.CreateTable(PersonSchema()).IsAlreadyExists());
  TableSchema bad = EmploymentSchema();
  bad.name = "bad";
  bad.foreign_keys = {{1, "nonexistent"}};
  EXPECT_TRUE(db.CreateTable(bad).IsInvalidArgument());
  EXPECT_EQ(db.GetTable("nope"), nullptr);
}

TEST(DatabaseTest, TotalRows) {
  Database db;
  ASSERT_TRUE(db.CreateTable(PersonSchema()).ok());
  ASSERT_TRUE(db.Insert("person",
                        {int64_t{1}, std::string("Ada"), Null{}}).ok());
  ASSERT_TRUE(db.Insert("person",
                        {int64_t{2}, std::string("Bob"), Null{}}).ok());
  EXPECT_EQ(db.TotalRows(), 2u);
}

}  // namespace
}  // namespace rdfalign::relational
