// Randomized equivalence harness: the incremental worklist engine and the
// legacy full-rescan engine must compute the same fixpoint partition — in
// fact bit-identical dense color vectors, since Partition::FromColors
// renumbers canonically — across random graphs, refinable subsets,
// predicate keys, and mediation (contextual) instances. Small graphs are
// additionally cross-checked against the brute-force maximal-bisimulation
// oracle.

#include <gtest/gtest.h>

#include <set>
#include <utility>

#include "core/bisim.h"
#include "core/context.h"
#include "core/refinement.h"
#include "test_util.h"

namespace rdfalign {
namespace {

const RefinementOptions kIncremental{.incremental = true};
const RefinementOptions kLegacy{.incremental = false};

std::vector<NodeId> AllNodes(const TripleGraph& g) {
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  return all;
}

// Compares the two engines on one (graph, initial, x) instance and checks
// the incremental stats invariants.
void ExpectEnginesAgree(const TripleGraph& g, const Partition& initial,
                        const std::vector<NodeId>& x,
                        const std::vector<uint8_t>* mask) {
  RefinementStats inc_stats;
  RefinementStats leg_stats;
  Partition inc =
      mask == nullptr
          ? BisimRefineFixpoint(g, initial, x, &inc_stats, kIncremental)
          : BisimRefineFixpointKeyed(g, initial, x, *mask, &inc_stats,
                                     kIncremental);
  Partition leg =
      mask == nullptr
          ? BisimRefineFixpoint(g, initial, x, &leg_stats, kLegacy)
          : BisimRefineFixpointKeyed(g, initial, x, *mask, &leg_stats,
                                     kLegacy);
  ASSERT_TRUE(Partition::Equivalent(inc, leg));
  // FromColors renumbers by first occurrence, which is canonical for an
  // equivalence relation: equal relations give equal vectors.
  EXPECT_EQ(inc.colors(), leg.colors());
  EXPECT_EQ(inc_stats.final_classes, leg_stats.final_classes);
  EXPECT_TRUE(Partition::IsFinerOrEqual(inc, initial));
  // The worklist can only shrink after the first full pass.
  if (!inc_stats.dirty_per_iteration.empty()) {
    EXPECT_EQ(inc_stats.dirty_per_iteration.front(), x.size());
  }
  // Steady-state work must not exceed the legacy engine's rescan total.
  EXPECT_LE(inc_stats.TotalDirty(), leg_stats.TotalDirty());
}

// Contextual (mediation-aware) refinement: the worklist port must match
// the legacy ContextualRefineFixpoint full-rescan driver bit for bit.
// Returns the number of predicate-only URIs so callers can assert the
// mediation path was actually exercised across a suite of instances.
size_t ExpectContextualEnginesAgree(const TripleGraph& g,
                                    const Partition& initial,
                                    const std::vector<NodeId>& x) {
  std::vector<uint8_t> predicate_only(g.NumNodes(), 0);
  const std::vector<NodeId> pred_only_uris = PredicateOnlyUris(g);
  for (NodeId n : pred_only_uris) predicate_only[n] = 1;
  MediationIndex mediation(g);
  RefinementStats inc_stats;
  RefinementStats leg_stats;
  Partition inc = ContextualRefineFixpoint(g, initial, x, mediation,
                                           predicate_only, &inc_stats,
                                           kIncremental);
  Partition leg = ContextualRefineFixpoint(g, initial, x, mediation,
                                           predicate_only, &leg_stats,
                                           kLegacy);
  EXPECT_TRUE(Partition::Equivalent(inc, leg));
  EXPECT_EQ(inc.colors(), leg.colors());
  EXPECT_EQ(inc_stats.final_classes, leg_stats.final_classes);
  EXPECT_TRUE(Partition::IsFinerOrEqual(inc, initial));
  if (!inc_stats.dirty_per_iteration.empty()) {
    EXPECT_EQ(inc_stats.dirty_per_iteration.front(), x.size());
  }
  // The mediation-aware dirtiness must not exceed the full-rescan total.
  EXPECT_LE(inc_stats.TotalDirty(), leg_stats.TotalDirty());
  return pred_only_uris.size();
}

class EngineEquivalenceProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(EngineEquivalenceProperty, RandomGraphsAllSubsets) {
  const uint64_t seed = GetParam();
  testing::RandomGraphOptions options;
  options.seed = seed;
  options.uris = 8 + seed % 13;
  options.literals = 4 + seed % 9;
  options.blanks = 3 + seed % 11;
  options.edges = 20 + seed % 70;
  options.predicates = 2 + seed % 5;
  TripleGraph g = testing::RandomGraph(options);

  const std::vector<NodeId> all = AllNodes(g);
  const std::vector<NodeId> blanks = g.NodesOfKind(TermKind::kBlank);

  // Full bisimulation from the label partition.
  ExpectEnginesAgree(g, LabelPartition(g), all, nullptr);
  // Deblanking restriction: X = blanks only.
  ExpectEnginesAgree(g, LabelPartition(g), blanks, nullptr);
  // From the trivial partition (URI singletons stay put).
  ExpectEnginesAgree(g, TrivialPartition(g), all, nullptr);

  // Keyed refinement under a pseudo-random key over the predicates.
  std::vector<uint8_t> mask(g.NumNodes(), 0);
  for (const Triple& t : g.triples()) {
    if ((g.LexicalId(t.p) + seed) % 2 == 0) mask[t.p] = 1;
  }
  ExpectEnginesAgree(g, LabelPartition(g), all, &mask);
  ExpectEnginesAgree(g, LabelPartition(g), blanks, &mask);
}

// 50 seeds x 5 engine comparisons each = 250 random instances, plus the
// evolving-pair and oracle suites below.
INSTANTIATE_TEST_SUITE_P(Seeds, EngineEquivalenceProperty,
                         ::testing::Range<uint64_t>(1, 51));

class EvolvingPairEquivalence : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EvolvingPairEquivalence, CombinedGraphsAgree) {
  // The production shape: a combined two-version graph where label classes
  // pair up across the sides.
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  CombinedGraph cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  ExpectEnginesAgree(g, LabelPartition(g), AllNodes(g), nullptr);
  ExpectEnginesAgree(g, LabelPartition(g), g.NodesOfKind(TermKind::kBlank),
                     nullptr);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvolvingPairEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

class BruteForceCrossCheck : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BruteForceCrossCheck, IncrementalMatchesOracleOnSmallGraphs) {
  const uint64_t seed = GetParam();
  testing::RandomGraphOptions options;
  options.seed = seed;
  options.uris = 4;
  options.literals = 3;
  options.blanks = 2 + seed % 4;
  options.edges = 8 + seed % 10;
  options.predicates = 2;
  TripleGraph g = testing::RandomGraph(options);

  Partition p = BisimPartition(g, nullptr, kIncremental);
  auto oracle = MaximalBisimulationBruteForce(g);
  std::set<std::pair<NodeId, NodeId>> rel(oracle.begin(), oracle.end());
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      EXPECT_EQ(p.ColorOf(a) == p.ColorOf(b), rel.count({a, b}) > 0)
          << "nodes " << a << "," << b << " seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BruteForceCrossCheck,
                         ::testing::Range<uint64_t>(1, 9));

TEST(EngineEquivalenceTest, PaperGraphsBitIdentical) {
  TripleGraph g = testing::Fig2Graph();
  ExpectEnginesAgree(g, LabelPartition(g), AllNodes(g), nullptr);

  auto [g1, g2] = testing::Fig3Graphs();
  CombinedGraph cg = testing::Combine(g1, g2);
  ExpectEnginesAgree(cg.graph(), LabelPartition(cg.graph()),
                     AllNodes(cg.graph()), nullptr);
}

TEST(EngineEquivalenceTest, EmptySubsetIsIdentityInBothEngines) {
  TripleGraph g = testing::Fig2Graph();
  Partition p0 = LabelPartition(g);
  RefinementStats stats;
  Partition inc = BisimRefineFixpoint(g, p0, {}, &stats, kIncremental);
  EXPECT_TRUE(Partition::Equivalent(p0, inc));
  EXPECT_GE(stats.iterations, 1u);
  Partition leg = BisimRefineFixpoint(g, p0, {}, nullptr, kLegacy);
  EXPECT_TRUE(Partition::Equivalent(inc, leg));
}

// 40 random graphs x 2 inputs = 80 contextual instances; the accumulated
// predicate-only count guards that the mediation path is genuinely
// exercised (random predicates are predominantly predicate-only).
TEST(ContextualEquivalenceTest, RandomMediationInstances) {
  size_t total_predicate_only = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    testing::RandomGraphOptions options;
    options.seed = seed * 977;
    options.uris = 8 + seed % 11;
    options.literals = 4 + seed % 7;
    options.blanks = 3 + seed % 9;
    options.edges = 24 + seed % 60;
    options.predicates = 2 + seed % 6;
    TripleGraph g = testing::RandomGraph(options);
    const std::vector<NodeId> all = AllNodes(g);
    total_predicate_only +=
        ExpectContextualEnginesAgree(g, LabelPartition(g), all);
    // The production shape: refine from a blanked partition over a subset
    // (here the blanks plus every URI with an even lexical id).
    std::vector<NodeId> subset = g.NodesOfKind(TermKind::kBlank);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsUri(n) && g.LexicalId(n) % 2 == 0) subset.push_back(n);
    }
    std::sort(subset.begin(), subset.end());
    ExpectContextualEnginesAgree(g, BlankColors(LabelPartition(g), subset),
                                 subset);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "first failing seed: " << seed;
      break;
    }
  }
  EXPECT_GT(total_predicate_only, 0u)
      << "no instance had predicate-only URIs; mediation never exercised";
}

class ContextualEvolvingPairEquivalence
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ContextualEvolvingPairEquivalence, PredicateAwareHybridAgrees) {
  // End-to-end: the predicate-aware hybrid alignment over a combined
  // two-version graph must not depend on the engine.
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  CombinedGraph cg = testing::Combine(g1, g2);
  RefinementStats inc_stats;
  RefinementStats leg_stats;
  Partition inc =
      PredicateAwareHybridPartition(cg, &inc_stats, kIncremental);
  Partition leg = PredicateAwareHybridPartition(cg, &leg_stats, kLegacy);
  ASSERT_TRUE(Partition::Equivalent(inc, leg));
  EXPECT_EQ(inc.colors(), leg.colors());
  EXPECT_EQ(inc_stats.final_classes, leg_stats.final_classes);
  EXPECT_LE(inc_stats.TotalDirty(), leg_stats.TotalDirty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextualEvolvingPairEquivalence,
                         ::testing::Range<uint64_t>(1, 13));

TEST(EngineEquivalenceTest, DirtyCountsShrinkOnChainGraph) {
  // A long chain ending in a distinguishing literal: each round can split
  // only one more node, so the worklist must collapse to O(1) per round
  // while the legacy engine rescans everything.
  GraphBuilder b;
  NodeId p = b.AddUri("ex:p");
  constexpr int kLen = 40;
  std::vector<NodeId> chain;
  for (int i = 0; i < kLen; ++i) chain.push_back(b.AddBlank());
  for (int i = 0; i + 1 < kLen; ++i) b.AddTriple(chain[i], p, chain[i + 1]);
  b.AddTriple(chain[kLen - 1], p, b.AddLiteral("end"));
  TripleGraph g = std::move(b.Build(true)).value();

  RefinementStats stats;
  Partition fix = BisimRefineFixpoint(g, LabelPartition(g),
                                      g.NodesOfKind(TermKind::kBlank),
                                      &stats, kIncremental);
  EXPECT_EQ(stats.final_classes, fix.NumColors());
  ASSERT_GE(stats.dirty_per_iteration.size(), 3u);
  // After the full first pass the worklist is tiny (the split frontier).
  for (size_t i = 1; i < stats.dirty_per_iteration.size(); ++i) {
    EXPECT_LE(stats.dirty_per_iteration[i], 2u) << "iteration " << i;
  }
  EXPECT_GT(stats.signature_bytes, 0u);
}

}  // namespace
}  // namespace rdfalign
