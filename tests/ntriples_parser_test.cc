#include "parser/ntriples_parser.h"

#include <gtest/gtest.h>

#include "parser/ntriples_writer.h"

namespace rdfalign {
namespace {

TEST(NTriplesParserTest, ParsesUriTriple) {
  auto g = ParseNTriplesString(
      "<http://a> <http://p> <http://b> .\n", nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_NE(g->FindUri("http://a"), kInvalidNode);
  EXPECT_NE(g->FindUri("http://p"), kInvalidNode);
  EXPECT_NE(g->FindUri("http://b"), kInvalidNode);
}

TEST(NTriplesParserTest, ParsesLiteralsWithEscapes) {
  auto g = ParseNTriplesString(
      "<http://a> <http://p> \"line\\nbreak \\\"quoted\\\"\" .\n", nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindLiteral("line\nbreak \"quoted\""), kInvalidNode);
}

TEST(NTriplesParserTest, FoldsLanguageTagsAndDatatypes) {
  auto g = ParseNTriplesString(
      "<http://a> <http://p> \"chat\"@fr .\n"
      "<http://a> <http://q> "
      "\"5\"^^<http://www.w3.org/2001/XMLSchema#integer> .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindLiteral("chat@fr"), kInvalidNode);
  EXPECT_NE(
      g->FindLiteral("5^^<http://www.w3.org/2001/XMLSchema#integer>"),
      kInvalidNode);
}

TEST(NTriplesParserTest, ParsesBlankNodes) {
  auto g = ParseNTriplesString(
      "_:b1 <http://p> _:b2 .\n"
      "_:b2 <http://p> \"x\" .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->CountOfKind(TermKind::kBlank), 2u);
  EXPECT_NE(g->FindBlank("b1"), kInvalidNode);
}

TEST(NTriplesParserTest, SkipsCommentsAndBlankLines) {
  NTriplesParseStats stats;
  auto g = ParseNTriplesString(
      "# header comment\n"
      "\n"
      "<http://a> <http://p> <http://b> . # trailing comment\n",
      nullptr, &stats);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_EQ(stats.triples, 1u);
  EXPECT_EQ(stats.comments, 2u);
}

TEST(NTriplesParserTest, UnicodeEscapesInLiterals) {
  auto g = ParseNTriplesString(
      "<http://a> <http://p> \"caf\\u00e9\" .\n", nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindLiteral("caf\xc3\xa9"), kInvalidNode);
}

TEST(NTriplesParserTest, ErrorsCarryLineNumbers) {
  auto g = ParseNTriplesString(
      "<http://a> <http://p> <http://b> .\n"
      "<http://a> <http://p> 42 .\n",
      nullptr);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsParseError());
  EXPECT_NE(g.status().message().find("line 2"), std::string::npos);
}

TEST(NTriplesParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseNTriplesString("<a <p> <b> .\n", nullptr).ok());
  EXPECT_FALSE(ParseNTriplesString("<a> \"p\" <b> .\n", nullptr).ok());
  EXPECT_FALSE(ParseNTriplesString("<a> <p> <b>\n", nullptr).ok());
  EXPECT_FALSE(ParseNTriplesString("<a> <p> \"unterminated .\n",
                                   nullptr).ok());
  EXPECT_FALSE(ParseNTriplesString("<a> <p> <b> . extra\n", nullptr).ok());
}

TEST(NTriplesParserTest, SharedDictionaryAcrossTwoParses) {
  auto dict = std::make_shared<Dictionary>();
  auto g1 = ParseNTriplesString("<http://a> <http://p> \"v\" .\n", dict);
  auto g2 = ParseNTriplesString("<http://a> <http://p> \"v\" .\n", dict);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->LexicalId(g1->FindUri("http://a")),
            g2->LexicalId(g2->FindUri("http://a")));
}

TEST(NTriplesWriterTest, RoundTripsThroughText) {
  const std::string input =
      "_:b1 <http://p> \"a\\nb\" .\n"
      "<http://s> <http://p> _:b1 .\n"
      "<http://s> <http://q> <http://o> .\n";
  auto g = ParseNTriplesString(input, nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  std::string serialized = NTriplesToString(*g);
  auto g2 = ParseNTriplesString(serialized, g->dict_ptr());
  ASSERT_TRUE(g2.ok()) << g2.status();
  EXPECT_EQ(g->NumNodes(), g2->NumNodes());
  EXPECT_EQ(g->NumEdges(), g2->NumEdges());
  // Second round trip is a fixpoint.
  EXPECT_EQ(serialized, NTriplesToString(*g2));
}

TEST(NTriplesFileTest, MissingFileIsIOError) {
  auto g = ParseNTriplesFile("/nonexistent/path.nt", nullptr);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsIOError());
}

TEST(NTriplesFileTest, WriteAndReadBack) {
  GraphBuilder b;
  b.AddLiteralTriple("http://s", "http://p", "hello world");
  auto g = std::move(b.Build(true)).value();
  const std::string path = ::testing::TempDir() + "/rt.nt";
  ASSERT_TRUE(WriteNTriplesFile(g, path).ok());
  auto g2 = ParseNTriplesFile(path, nullptr);
  ASSERT_TRUE(g2.ok()) << g2.status();
  EXPECT_EQ(g2->NumEdges(), 1u);
}

}  // namespace
}  // namespace rdfalign
