#include "util/hash.h"

#include <gtest/gtest.h>

#include <set>

namespace rdfalign {
namespace {

TEST(HashTest, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  EXPECT_NE(Mix64(1), Mix64(2));
  // Consecutive inputs should not produce consecutive outputs.
  EXPECT_GT(Mix64(2) > Mix64(1) ? Mix64(2) - Mix64(1) : Mix64(1) - Mix64(2),
            1000u);
}

TEST(HashTest, HashBytesMatchesHashString) {
  const char* s = "bisimulation";
  EXPECT_EQ(HashBytes(s, 12), HashString("bisimulation"));
  EXPECT_NE(HashString("abc"), HashString("acb"));
  EXPECT_NE(HashString(""), HashString("a"));
}

TEST(HashTest, HashU32SpanOrderAndLengthSensitive) {
  std::vector<uint32_t> a{1, 2, 3};
  std::vector<uint32_t> b{3, 2, 1};
  std::vector<uint32_t> c{1, 2};
  EXPECT_NE(HashU32Vector(a), HashU32Vector(b));
  EXPECT_NE(HashU32Vector(a), HashU32Vector(c));
  EXPECT_EQ(HashU32Vector(a), HashU32Span(a.data(), a.size()));
}

TEST(HashTest, EmptyVsZeroLengthDistinctFromSingleZero) {
  std::vector<uint32_t> empty;
  std::vector<uint32_t> zero{0};
  EXPECT_NE(HashU32Vector(empty), HashU32Vector(zero));
}

TEST(HashTest, PackPairRoundTrips) {
  uint64_t packed = PackPair(0xdeadbeefu, 0xcafebabeu);
  EXPECT_EQ(UnpackHi(packed), 0xdeadbeefu);
  EXPECT_EQ(UnpackLo(packed), 0xcafebabeu);
  EXPECT_NE(PackPair(1, 2), PackPair(2, 1));
}

TEST(HashTest, FewCollisionsOnSmallKeys) {
  std::set<uint64_t> hashes;
  for (uint32_t i = 0; i < 10000; ++i) {
    hashes.insert(Mix64(i));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

}  // namespace
}  // namespace rdfalign
