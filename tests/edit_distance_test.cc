#include "core/edit_distance.h"

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "gen/textgen.h"
#include "util/random.h"

namespace rdfalign {
namespace {

TEST(LevenshteinTest, KnownValues) {
  EXPECT_EQ(LevenshteinDistance("", ""), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", ""), 3u);
  EXPECT_EQ(LevenshteinDistance("", "xy"), 2u);
  EXPECT_EQ(LevenshteinDistance("abc", "abc"), 0u);
  EXPECT_EQ(LevenshteinDistance("abc", "ac"), 1u);
  EXPECT_EQ(LevenshteinDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(LevenshteinDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(LevenshteinDistance("Slawek", "Slawomir"), 4u);
}

TEST(LevenshteinTest, Symmetric) {
  EXPECT_EQ(LevenshteinDistance("abcdef", "azced"),
            LevenshteinDistance("azced", "abcdef"));
}

TEST(NormalizedTest, PaperExample5Value) {
  // "abc" vs "ac": differ by the presence of b, lengths bounded by 3 -> 1/3.
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "ac"), 1.0 / 3.0);
  // "a" vs "ac": normalized edit distance 1/2 (σEdit overrides it to 1 for
  // aligned nodes, but the raw measure is 1/2).
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("a", "ac"), 0.5);
}

TEST(NormalizedTest, RangeAndIdentity) {
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("same", "same"), 0.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("abc", "xyz"), 1.0);
  EXPECT_DOUBLE_EQ(NormalizedEditDistance("", "abc"), 1.0);
}

TEST(BoundedTest, AgreesWithExactWithinBound) {
  EXPECT_EQ(LevenshteinDistanceBounded("kitten", "sitting", 3), 3u);
  EXPECT_EQ(LevenshteinDistanceBounded("kitten", "sitting", 5), 3u);
  EXPECT_GT(LevenshteinDistanceBounded("kitten", "sitting", 2), 2u);
  EXPECT_EQ(LevenshteinDistanceBounded("abc", "abc", 0), 0u);
  EXPECT_GT(LevenshteinDistanceBounded("abc", "abd", 0), 0u);
}

TEST(BoundedTest, LengthDifferencePrunes) {
  EXPECT_GT(LevenshteinDistanceBounded("a", "aaaaaaaaaa", 3), 3u);
}

TEST(BoundedNormalizedTest, BelowThetaExactAboveThetaOne) {
  // 1/3 < 0.5: exact value returned.
  EXPECT_DOUBLE_EQ(NormalizedEditDistanceBounded("abc", "ac", 0.5),
                   1.0 / 3.0);
  // 1/3 >= 0.2: pruned to 1.
  EXPECT_DOUBLE_EQ(NormalizedEditDistanceBounded("abc", "ac", 0.2), 1.0);
  // Equal strings always 0.
  EXPECT_DOUBLE_EQ(NormalizedEditDistanceBounded("x", "x", 0.01), 0.0);
}

// Property sweep: the bounded variant agrees with the exact one, and the
// normalized distance is a metric.
class EditDistanceProperty
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(EditDistanceProperty, BoundedMatchesExact) {
  auto [seed, theta] = GetParam();
  Rng rng(seed);
  for (int i = 0; i < 50; ++i) {
    std::string a = gen::RandomSentence(rng, 1, 4);
    std::string b =
        rng.Bernoulli(0.5) ? gen::ApplyTypos(a, rng.Uniform(4), rng)
                           : gen::RandomSentence(rng, 1, 4);
    double exact = NormalizedEditDistance(a, b);
    double bounded = NormalizedEditDistanceBounded(a, b, theta);
    if (exact < theta) {
      EXPECT_DOUBLE_EQ(bounded, exact) << "a=" << a << " b=" << b;
    } else {
      EXPECT_DOUBLE_EQ(bounded, 1.0) << "a=" << a << " b=" << b;
    }
  }
}

TEST_P(EditDistanceProperty, TriangleInequality) {
  auto [seed, theta] = GetParam();
  (void)theta;
  Rng rng(seed + 1000);
  for (int i = 0; i < 30; ++i) {
    std::string a = gen::RandomSentence(rng, 1, 3);
    std::string b = gen::ApplyTypos(a, rng.Uniform(3), rng);
    std::string c = gen::RandomSentence(rng, 1, 3);
    double ab = NormalizedEditDistance(a, b);
    double bc = NormalizedEditDistance(b, c);
    double ac = NormalizedEditDistance(a, c);
    EXPECT_LE(ac, ab + bc + 1e-12)
        << "a=" << a << " b=" << b << " c=" << c;
    EXPECT_DOUBLE_EQ(ab, NormalizedEditDistance(b, a));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EditDistanceProperty,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4),
                       ::testing::Values(0.35, 0.65, 0.95)));

}  // namespace
}  // namespace rdfalign
