#include "core/delta.h"

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(DeltaTest, IdenticalVersionsHaveEmptyDelta) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = testing::Fig2Graph(dict);
  TripleGraph g2 = testing::Fig2Graph(dict);
  auto cg = testing::Combine(g1, g2);
  RdfDelta delta = ComputeDelta(cg, HybridPartition(cg));
  EXPECT_TRUE(delta.added.empty());
  EXPECT_TRUE(delta.deleted.empty());
  EXPECT_EQ(delta.unchanged, g1.NumEdges());
  EXPECT_TRUE(delta.renamed_uris.empty());
}

TEST(DeltaTest, Fig3DeltaFindsRenameAndBlankMerge) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  RdfDelta delta = ComputeDelta(cg, HybridPartition(cg));
  // u -> v rename discovered via alignment.
  ASSERT_EQ(delta.renamed_uris.size(), 1u);
  EXPECT_EQ(delta.renamed_uris[0].source_uri, "ex:u");
  EXPECT_EQ(delta.renamed_uris[0].target_uri, "ex:v");
  // The duplicate blank's edges collapse: G1 has one more edge than G2 and
  // hybrid aligns all 9 of G2's; the leftover source edge is a deletion.
  EXPECT_EQ(delta.deleted.size(), 1u);
  EXPECT_TRUE(delta.added.empty());
  EXPECT_EQ(delta.unchanged, 9u);
}

TEST(DeltaTest, TrivialAlignmentSeesRenamesAsAddDelete) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  RdfDelta delta = ComputeDelta(cg, TrivialPartition(cg.graph()));
  // Without hybrid, the rename and blank edges all appear as changes.
  EXPECT_GT(delta.deleted.size(), 1u);
  EXPECT_FALSE(delta.added.empty());
  EXPECT_TRUE(delta.renamed_uris.empty());
}

TEST(DeltaTest, PureInsertion) {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  b1.AddLiteralTriple("ex:s", "ex:p", "v");
  GraphBuilder b2(dict);
  b2.AddLiteralTriple("ex:s", "ex:p", "v");
  b2.AddLiteralTriple("ex:s", "ex:q", "w");
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);
  RdfDelta delta = ComputeDelta(cg, HybridPartition(cg));
  EXPECT_EQ(delta.added.size(), 1u);
  EXPECT_TRUE(delta.deleted.empty());
  EXPECT_EQ(delta.unchanged, 1u);
}

TEST(DeltaTest, SummaryFormat) {
  RdfDelta delta;
  delta.added.resize(3);
  delta.deleted.resize(1);
  delta.unchanged = 7;
  delta.renamed_uris.resize(2);
  EXPECT_EQ(DeltaSummary(delta), "+3 -1 ~7, 2 renames");
}

}  // namespace
}  // namespace rdfalign
