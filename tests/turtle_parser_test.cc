#include "parser/turtle_parser.h"

#include <gtest/gtest.h>

namespace rdfalign {
namespace {

TEST(TurtleParserTest, PrefixesAndPrefixedNames) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a ex:p ex:b .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindUri("http://example.org/a"), kInvalidNode);
  EXPECT_NE(g->FindUri("http://example.org/p"), kInvalidNode);
}

TEST(TurtleParserTest, SparqlStyleDirectives) {
  auto g = ParseTurtleString(
      "PREFIX ex: <http://example.org/>\n"
      "ex:a ex:p ex:b .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(TurtleParserTest, AKeywordExpandsToRdfType) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://example.org/> .\n"
      "ex:a a ex:Class .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindUri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            kInvalidNode);
}

TEST(TurtleParserTest, PredicateObjectAndObjectLists) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p ex:b , ex:c ;\n"
      "     ex:q \"v1\" , \"v2\" .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 4u);
}

TEST(TurtleParserTest, BlankNodesLabeledAndAnonymous) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "_:x ex:p [ ex:q \"inner\" ] .\n"
      "_:x ex:r _:y .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->CountOfKind(TermKind::kBlank), 3u);  // x, y, anonymous
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST(TurtleParserTest, LiteralsWithTagsAndDatatypes) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "@prefix xsd: <http://www.w3.org/2001/XMLSchema#> .\n"
      "ex:a ex:p \"hi\"@en .\n"
      "ex:a ex:q \"3\"^^xsd:int .\n"
      "ex:a ex:r 'single' .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindLiteral("hi@en"), kInvalidNode);
  EXPECT_NE(g->FindLiteral("3^^<http://www.w3.org/2001/XMLSchema#int>"),
            kInvalidNode);
  EXPECT_NE(g->FindLiteral("single"), kInvalidNode);
}

TEST(TurtleParserTest, NumericAndBooleanAbbreviations) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p 42 .\n"
      "ex:a ex:q -3.25 .\n"
      "ex:a ex:r 1.5e3 .\n"
      "ex:a ex:s true .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindLiteral("42"), kInvalidNode);
  EXPECT_NE(g->FindLiteral("-3.25"), kInvalidNode);
  EXPECT_NE(g->FindLiteral("1.5e3"), kInvalidNode);
  EXPECT_NE(g->FindLiteral("true"), kInvalidNode);
}

TEST(TurtleParserTest, BaseResolution) {
  auto g = ParseTurtleString(
      "@base <http://base.org/> .\n"
      "<rel> <http://p> <other> .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_NE(g->FindUri("http://base.org/rel"), kInvalidNode);
  EXPECT_NE(g->FindUri("http://base.org/other"), kInvalidNode);
}

TEST(TurtleParserTest, CommentsAnywhere) {
  auto g = ParseTurtleString(
      "# leading\n"
      "@prefix ex: <http://e/> . # after directive\n"
      "ex:a ex:p ex:b . # after triple\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(TurtleParserTest, UndeclaredPrefixIsError) {
  auto g = ParseTurtleString("nope:a nope:p nope:b .\n", nullptr);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsParseError());
  EXPECT_NE(g.status().message().find("nope"), std::string::npos);
}

TEST(TurtleParserTest, CollectionsAreNotSupported) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p ( ex:b ex:c ) .\n",
      nullptr);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsNotSupported());
}

TEST(TurtleParserTest, LongStringsAreNotSupported) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p \"\"\"long\"\"\" .\n",
      nullptr);
  ASSERT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsNotSupported());
}

TEST(TurtleParserTest, NestedAnonymousBlanks) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p [ ex:q [ ex:r \"deep\" ] ; ex:s \"mid\" ] .\n",
      nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->CountOfKind(TermKind::kBlank), 2u);
  EXPECT_EQ(g->NumEdges(), 4u);
}

TEST(TurtleParserTest, MissingDotIsError) {
  auto g = ParseTurtleString(
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p ex:b\n",
      nullptr);
  EXPECT_FALSE(g.ok());
}

}  // namespace
}  // namespace rdfalign
