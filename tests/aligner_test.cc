#include "core/aligner.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rdfalign {
namespace {

TEST(AlignerTest, MethodNames) {
  EXPECT_EQ(AlignMethodToString(AlignMethod::kTrivial), "trivial");
  EXPECT_EQ(AlignMethodToString(AlignMethod::kDeblank), "deblank");
  EXPECT_EQ(AlignMethodToString(AlignMethod::kHybrid), "hybrid");
  EXPECT_EQ(AlignMethodToString(AlignMethod::kHybridContextual),
            "hybrid-contextual");
  EXPECT_EQ(AlignMethodToString(AlignMethod::kOverlap), "overlap");
}

TEST(AlignerTest, RejectsMismatchedDictionaries) {
  TripleGraph g1 = testing::Fig2Graph();
  TripleGraph g2 = testing::Fig2Graph();  // separate dictionary
  auto outcome = Aligner().Align(g1, g2);
  EXPECT_FALSE(outcome.ok());
  EXPECT_TRUE(outcome.status().IsInvalidArgument());
}

TEST(AlignerTest, OverlapPopulatesWeights) {
  auto [g1, g2] = testing::Fig3Graphs();
  AlignerOptions options;
  options.method = AlignMethod::kOverlap;
  auto outcome = Aligner(options).Align(g1, g2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->weights.size(), g1.NumNodes() + g2.NumNodes());
  for (double w : outcome->weights) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(AlignerTest, NonOverlapMethodsLeaveWeightsEmpty) {
  auto [g1, g2] = testing::Fig3Graphs();
  for (AlignMethod m : {AlignMethod::kTrivial, AlignMethod::kDeblank,
                        AlignMethod::kHybrid,
                        AlignMethod::kHybridContextual}) {
    AlignerOptions options;
    options.method = m;
    auto outcome = Aligner(options).Align(g1, g2);
    ASSERT_TRUE(outcome.ok()) << AlignMethodToString(m);
    EXPECT_TRUE(outcome->weights.empty()) << AlignMethodToString(m);
    EXPECT_EQ(outcome->partition.NumNodes(),
              g1.NumNodes() + g2.NumNodes());
  }
}

TEST(AlignerTest, TimingAndStatsAreFilled) {
  auto [g1, g2] = testing::Fig3Graphs();
  AlignerOptions options;
  options.method = AlignMethod::kHybrid;
  auto outcome = Aligner(options).Align(g1, g2);
  ASSERT_TRUE(outcome.ok());
  EXPECT_GE(outcome->seconds, 0.0);
  EXPECT_GT(outcome->refinement.iterations, 0u);
  EXPECT_GT(outcome->edge_stats.total_edges, 0u);
  EXPECT_GT(outcome->node_stats.aligned_classes, 0u);
}

TEST(AlignerTest, ContextualAtLeastMatchesHybridRatioOnFig3) {
  auto [g1, g2] = testing::Fig3Graphs();
  AlignerOptions hybrid{.method = AlignMethod::kHybrid};
  AlignerOptions contextual{.method = AlignMethod::kHybridContextual};
  auto h = Aligner(hybrid).Align(g1, g2);
  auto c = Aligner(contextual).Align(g1, g2);
  ASSERT_TRUE(h.ok() && c.ok());
  // Fig. 3 has no churn among predicate-only URIs, so both agree.
  EXPECT_EQ(h->edge_stats.aligned_edges, c->edge_stats.aligned_edges);
}

TEST(AlignerTest, OverlapThetaIsForwarded) {
  auto [g1, g2] = testing::RandomEvolvingPair(11);
  AlignerOptions strict;
  strict.method = AlignMethod::kOverlap;
  strict.overlap.theta = 0.95;
  AlignerOptions loose;
  loose.method = AlignMethod::kOverlap;
  loose.overlap.theta = 0.5;
  auto s = Aligner(strict).Align(g1, g2);
  auto l = Aligner(loose).Align(g1, g2);
  ASSERT_TRUE(s.ok() && l.ok());
  // Different thresholds generally change the outcome; at minimum both are
  // valid partitions covering all nodes.
  EXPECT_EQ(s->partition.NumNodes(), l->partition.NumNodes());
}

}  // namespace
}  // namespace rdfalign
