// FaultInjector unit coverage: spec parsing, Nth-hit arming, EINTR storm
// depth, hit counting, and reset semantics. The injector is process-wide
// state, so every test resets it on the way out.

#include "util/fault_injector.h"

#include <gtest/gtest.h>

#include <cerrno>

namespace rdfalign {
namespace {

class FaultInjectorTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Reset(); }
};

TEST_F(FaultInjectorTest, DisabledInjectorNeverFires) {
  EXPECT_FALSE(FaultInjector::Enabled());
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(FaultInjector::Hit("store.write").kind, FaultAction::kNone);
  }
  // A disabled Hit is not even counted — the fast path skips the registry.
  EXPECT_EQ(FaultInjector::Hits("store.write"), 0u);
}

TEST_F(FaultInjectorTest, FiresOnTheNthHitOnly) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("store.write@3=error").ok());
  EXPECT_TRUE(FaultInjector::Enabled());
  EXPECT_EQ(FaultInjector::Hit("store.write").kind, FaultAction::kNone);
  EXPECT_EQ(FaultInjector::Hit("store.write").kind, FaultAction::kNone);
  const FaultAction third = FaultInjector::Hit("store.write");
  EXPECT_EQ(third.kind, FaultAction::kError);
  EXPECT_EQ(third.error_errno, EIO);  // default errno
  // One-shot: the arm does not re-fire.
  EXPECT_EQ(FaultInjector::Hit("store.write").kind, FaultAction::kNone);
  EXPECT_EQ(FaultInjector::Hits("store.write"), 4u);
}

TEST_F(FaultInjectorTest, NamedErrnoAndOtherPointsUntouched) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("store.fsync@1=error:ENOSPC").ok());
  EXPECT_EQ(FaultInjector::Hit("store.write").kind, FaultAction::kNone);
  const FaultAction a = FaultInjector::Hit("store.fsync");
  EXPECT_EQ(a.kind, FaultAction::kError);
  EXPECT_EQ(a.error_errno, ENOSPC);
}

TEST_F(FaultInjectorTest, EintrStormRepeats) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("socket.read@2=eintr3").ok());
  EXPECT_EQ(FaultInjector::Hit("socket.read").kind, FaultAction::kNone);
  for (int i = 0; i < 3; ++i) {
    const FaultAction a = FaultInjector::Hit("socket.read");
    EXPECT_EQ(a.kind, FaultAction::kEintr) << "storm hit " << i;
    EXPECT_EQ(a.error_errno, EINTR);
  }
  EXPECT_EQ(FaultInjector::Hit("socket.read").kind, FaultAction::kNone);
}

TEST_F(FaultInjectorTest, ShortModeAndMultipleClauses) {
  ASSERT_TRUE(
      FaultInjector::ArmFromSpec("socket.write@1=short;socket.write@3=error")
          .ok());
  EXPECT_EQ(FaultInjector::Hit("socket.write").kind, FaultAction::kShort);
  EXPECT_EQ(FaultInjector::Hit("socket.write").kind, FaultAction::kNone);
  EXPECT_EQ(FaultInjector::Hit("socket.write").kind, FaultAction::kError);
}

TEST_F(FaultInjectorTest, ResetDisablesAndClearsCounts) {
  ASSERT_TRUE(FaultInjector::ArmFromSpec("store.rename@1=error").ok());
  EXPECT_EQ(FaultInjector::Hit("store.rename").kind, FaultAction::kError);
  FaultInjector::Reset();
  EXPECT_FALSE(FaultInjector::Enabled());
  EXPECT_EQ(FaultInjector::Hits("store.rename"), 0u);
  EXPECT_EQ(FaultInjector::Hit("store.rename").kind, FaultAction::kNone);
}

TEST_F(FaultInjectorTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(FaultInjector::ArmFromSpec("store.write").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("store.write@0=error").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("store.write@x=error").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("store.write@1=explode").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("store.write@1=error:EBOGUS").ok());
  EXPECT_FALSE(FaultInjector::ArmFromSpec("@1=error").ok());
  FaultInjector::Reset();
}

}  // namespace
}  // namespace rdfalign
