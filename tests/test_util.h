// Shared test fixtures: the paper's worked-example graphs (Figs. 1, 2, 3, 7)
// and random RDF graph generators for property tests.

#ifndef RDFALIGN_TESTS_TEST_UTIL_H_
#define RDFALIGN_TESTS_TEST_UTIL_H_

#include <memory>
#include <utility>

#include "rdf/graph.h"
#include "rdf/merge.h"
#include "util/random.h"

namespace rdfalign::testing {

/// The single RDF graph of Figure 2 (w, u, b1, b2, b3, "a", "b" and
/// predicates p, q, r); b2 and b3 are bisimilar.
TripleGraph Fig2Graph(std::shared_ptr<Dictionary> dict = nullptr);

/// The two versions of Figure 3 (sharing one dictionary): evolving by
/// merging equivalent blanks b2/b3 into b4 and renaming u to v.
std::pair<TripleGraph, TripleGraph> Fig3Graphs();

/// The two versions of Figure 1 (personal-information example; ASCII
/// transliteration: Slawek/Slawomir/Pawel).
std::pair<TripleGraph, TripleGraph> Fig1Graphs();

/// The two graphs of Figure 7 (σEdit example): literals "abc"/"c"/"b"/"a"
/// vs "ac"/"c"/"a" under w/u/v vs w2/u2/v2.
std::pair<TripleGraph, TripleGraph> Fig7Graphs();

/// Configuration of the random RDF graph generator.
struct RandomGraphOptions {
  size_t uris = 12;
  size_t literals = 10;
  size_t blanks = 6;
  size_t edges = 40;
  size_t predicates = 4;  ///< distinct predicate URIs drawn from the URI set
  uint64_t seed = 1;
};

/// A random well-formed RDF graph (literals only in object position,
/// non-blank predicates).
TripleGraph RandomGraph(const RandomGraphOptions& options,
                        std::shared_ptr<Dictionary> dict = nullptr);

/// A random evolving pair: the second graph is the first after random
/// literal edits, URI renames, node insertions and deletions, sharing one
/// dictionary. Returns the combined pair.
std::pair<TripleGraph, TripleGraph> RandomEvolvingPair(
    uint64_t seed, const RandomGraphOptions& base_options = {});

/// A random evolving chain of `versions` graphs sharing one dictionary:
/// version 0 is RandomGraph(base_options), each later version evolves its
/// predecessor by the same edit process as RandomEvolvingPair (literal
/// typos, URI renames, triple deletions, insertions). The delta-store
/// round-trip property tests replay these chains.
std::vector<TripleGraph> RandomEvolvingChain(
    uint64_t seed, size_t versions,
    const RandomGraphOptions& base_options = {});

/// CombinedGraph convenience (CHECK-fails on error).
CombinedGraph Combine(const TripleGraph& g1, const TripleGraph& g2);

}  // namespace rdfalign::testing

#endif  // RDFALIGN_TESTS_TEST_UTIL_H_
