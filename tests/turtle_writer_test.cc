#include "parser/turtle_writer.h"

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parser/ntriples_writer.h"
#include "parser/turtle_parser.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TripleGraph SampleGraph() {
  GraphBuilder b;
  NodeId s = b.AddUri("http://data.example/person/1");
  NodeId s2 = b.AddUri("http://data.example/person/2");
  NodeId name = b.AddUri("http://schema.example/name");
  NodeId knows = b.AddUri("http://schema.example/knows");
  NodeId type = b.AddUri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  NodeId person = b.AddUri("http://schema.example/Person");
  b.AddTriple(s, type, person);
  b.AddTriple(s2, type, person);
  b.AddTriple(s, name, b.AddLiteral("Alice"));
  b.AddTriple(s, name, b.AddLiteral("Ally"));
  b.AddTriple(s, knows, s2);
  b.AddTriple(s2, name, b.AddLiteral("Bob \"the\" builder"));
  return std::move(b.Build(true)).value();
}

TEST(TurtleWriterTest, InfersPrefixesAndGroups) {
  TripleGraph g = SampleGraph();
  std::string ttl = TurtleToString(g);
  // Prefixes are inferred for the frequent stems.
  EXPECT_NE(ttl.find("@prefix"), std::string::npos);
  EXPECT_NE(ttl.find("http://schema.example/"), std::string::npos);
  // rdf:type is abbreviated to 'a'.
  EXPECT_NE(ttl.find(" a "), std::string::npos);
  // Object lists: the two names of person/1 join with a comma.
  EXPECT_NE(ttl.find(", "), std::string::npos);
  // Predicate lists: at least one ';' grouping.
  EXPECT_NE(ttl.find(";"), std::string::npos);
}

TEST(TurtleWriterTest, RoundTripsThroughTurtleParser) {
  TripleGraph g = SampleGraph();
  std::string ttl = TurtleToString(g);
  auto parsed = ParseTurtleString(ttl, g.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << ttl;
  EXPECT_EQ(parsed->NumEdges(), g.NumEdges());
  EXPECT_EQ(parsed->NumNodes(), g.NumNodes());
  // N-Triples canonical forms agree (same triples modulo node ids).
  EXPECT_EQ(NTriplesToString(*parsed).size(), NTriplesToString(g).size());
}

TEST(TurtleWriterTest, ExplicitPrefixTable) {
  TripleGraph g = SampleGraph();
  TurtleWriteOptions options;
  options.prefixes["sch"] = "http://schema.example/";
  std::string ttl = TurtleToString(g, options);
  EXPECT_NE(ttl.find("@prefix sch: <http://schema.example/>"),
            std::string::npos);
  EXPECT_NE(ttl.find("sch:name"), std::string::npos);
  // Unprefixed IRIs fall back to <...> form.
  EXPECT_NE(ttl.find("<http://data.example/person/1>"), std::string::npos);
}

TEST(TurtleWriterTest, BlankNodesAndEscapes) {
  GraphBuilder b;
  NodeId blank = b.AddBlank("rec");
  NodeId p = b.AddUri("http://e/p");
  b.AddTriple(blank, p, b.AddLiteral("line\nbreak"));
  TripleGraph g = std::move(b.Build(true)).value();
  std::string ttl = TurtleToString(g);
  EXPECT_NE(ttl.find("_:rec"), std::string::npos);
  EXPECT_NE(ttl.find("\\n"), std::string::npos);
  auto parsed = ParseTurtleString(ttl, g.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_NE(parsed->FindLiteral("line\nbreak"), kInvalidNode);
}

TEST(TurtleWriterTest, RoundTripsGeneratedOntology) {
  // The writer must round-trip EFO-style content (blank axioms, unicode-free
  // labels, URI vocab).
  auto [g1, g2] = testing::Fig1Graphs();
  std::string ttl = TurtleToString(g1);
  auto parsed = ParseTurtleString(ttl, g1.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << ttl;
  EXPECT_EQ(parsed->NumEdges(), g1.NumEdges());
}

TEST(TurtleWriterTest, EmptyGraph) {
  GraphBuilder b;
  TripleGraph g = std::move(b.Build(true)).value();
  EXPECT_EQ(TurtleToString(g), "");
}

// The 'a' abbreviation is only valid in predicate position; rdf:type used
// as a subject or object (schema introspection) must stay a full IRI.
TEST(TurtleWriterTest, RdfTypeAsSubjectAndObjectRoundTrips) {
  constexpr char kType[] = "http://www.w3.org/1999/02/22-rdf-syntax-ns#type";
  GraphBuilder b;
  NodeId type = b.AddUri(kType);
  NodeId property = b.AddUri("http://www.w3.org/2000/01/rdf-schema#Property");
  NodeId seen = b.AddUri("http://e/seen");
  b.AddTriple(type, type, property);   // rdf:type as subject and predicate
  b.AddTriple(seen, seen, type);       // rdf:type as object
  TripleGraph g = std::move(b.Build(true)).value();
  std::string ttl = TurtleToString(g);
  auto parsed = ParseTurtleString(ttl, g.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << ttl;
  EXPECT_EQ(parsed->NumEdges(), g.NumEdges());
  EXPECT_NE(parsed->FindUri(kType), kInvalidNode);
}

// Canonical lexical form of every triple, order-insensitive — the writer
// and parser may number nodes differently, so round-trip equality is on
// labels, not ids.
std::vector<std::string> CanonicalTriples(const TripleGraph& g) {
  std::vector<std::string> lines;
  for (const Triple& t : g.triples()) {
    std::string line;
    for (NodeId n : {t.s, t.p, t.o}) {
      line += std::to_string(static_cast<int>(g.KindOf(n)));
      line += '|';
      line += g.Lexical(n);
      line += '\x1f';
    }
    lines.push_back(std::move(line));
  }
  std::sort(lines.begin(), lines.end());
  return lines;
}

TEST(TurtleWriterTest, RandomGraphsRoundTripCanonically) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    testing::RandomGraphOptions options;
    options.seed = seed;
    options.edges = 60;
    TripleGraph g = testing::RandomGraph(options);
    std::string ttl = TurtleToString(g);
    auto parsed = ParseTurtleString(ttl, g.dict_ptr());
    ASSERT_TRUE(parsed.ok()) << "seed " << seed << ": " << parsed.status()
                             << "\n" << ttl;
    EXPECT_EQ(CanonicalTriples(*parsed), CanonicalTriples(g))
        << "seed " << seed << "\n" << ttl;
  }
}

}  // namespace
}  // namespace rdfalign
