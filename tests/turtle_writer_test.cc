#include "parser/turtle_writer.h"

#include <gtest/gtest.h>

#include "parser/ntriples_writer.h"
#include "parser/turtle_parser.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TripleGraph SampleGraph() {
  GraphBuilder b;
  NodeId s = b.AddUri("http://data.example/person/1");
  NodeId s2 = b.AddUri("http://data.example/person/2");
  NodeId name = b.AddUri("http://schema.example/name");
  NodeId knows = b.AddUri("http://schema.example/knows");
  NodeId type = b.AddUri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  NodeId person = b.AddUri("http://schema.example/Person");
  b.AddTriple(s, type, person);
  b.AddTriple(s2, type, person);
  b.AddTriple(s, name, b.AddLiteral("Alice"));
  b.AddTriple(s, name, b.AddLiteral("Ally"));
  b.AddTriple(s, knows, s2);
  b.AddTriple(s2, name, b.AddLiteral("Bob \"the\" builder"));
  return std::move(b.Build(true)).value();
}

TEST(TurtleWriterTest, InfersPrefixesAndGroups) {
  TripleGraph g = SampleGraph();
  std::string ttl = TurtleToString(g);
  // Prefixes are inferred for the frequent stems.
  EXPECT_NE(ttl.find("@prefix"), std::string::npos);
  EXPECT_NE(ttl.find("http://schema.example/"), std::string::npos);
  // rdf:type is abbreviated to 'a'.
  EXPECT_NE(ttl.find(" a "), std::string::npos);
  // Object lists: the two names of person/1 join with a comma.
  EXPECT_NE(ttl.find(", "), std::string::npos);
  // Predicate lists: at least one ';' grouping.
  EXPECT_NE(ttl.find(";"), std::string::npos);
}

TEST(TurtleWriterTest, RoundTripsThroughTurtleParser) {
  TripleGraph g = SampleGraph();
  std::string ttl = TurtleToString(g);
  auto parsed = ParseTurtleString(ttl, g.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << ttl;
  EXPECT_EQ(parsed->NumEdges(), g.NumEdges());
  EXPECT_EQ(parsed->NumNodes(), g.NumNodes());
  // N-Triples canonical forms agree (same triples modulo node ids).
  EXPECT_EQ(NTriplesToString(*parsed).size(), NTriplesToString(g).size());
}

TEST(TurtleWriterTest, ExplicitPrefixTable) {
  TripleGraph g = SampleGraph();
  TurtleWriteOptions options;
  options.prefixes["sch"] = "http://schema.example/";
  std::string ttl = TurtleToString(g, options);
  EXPECT_NE(ttl.find("@prefix sch: <http://schema.example/>"),
            std::string::npos);
  EXPECT_NE(ttl.find("sch:name"), std::string::npos);
  // Unprefixed IRIs fall back to <...> form.
  EXPECT_NE(ttl.find("<http://data.example/person/1>"), std::string::npos);
}

TEST(TurtleWriterTest, BlankNodesAndEscapes) {
  GraphBuilder b;
  NodeId blank = b.AddBlank("rec");
  NodeId p = b.AddUri("http://e/p");
  b.AddTriple(blank, p, b.AddLiteral("line\nbreak"));
  TripleGraph g = std::move(b.Build(true)).value();
  std::string ttl = TurtleToString(g);
  EXPECT_NE(ttl.find("_:rec"), std::string::npos);
  EXPECT_NE(ttl.find("\\n"), std::string::npos);
  auto parsed = ParseTurtleString(ttl, g.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_NE(parsed->FindLiteral("line\nbreak"), kInvalidNode);
}

TEST(TurtleWriterTest, RoundTripsGeneratedOntology) {
  // The writer must round-trip EFO-style content (blank axioms, unicode-free
  // labels, URI vocab).
  auto [g1, g2] = testing::Fig1Graphs();
  std::string ttl = TurtleToString(g1);
  auto parsed = ParseTurtleString(ttl, g1.dict_ptr());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << ttl;
  EXPECT_EQ(parsed->NumEdges(), g1.NumEdges());
}

TEST(TurtleWriterTest, EmptyGraph) {
  GraphBuilder b;
  TripleGraph g = std::move(b.Build(true)).value();
  EXPECT_EQ(TurtleToString(g), "");
}

}  // namespace
}  // namespace rdfalign
