// Equivalence of the flat dense-ID pipeline against the legacy hash-map
// implementations (core/pipeline_legacy.h) — the ISSUE 4 contract: the
// rewrite must be a pure representation change, with bit-identical outputs.
//
// Covers random partitions (dense, non-contiguous, adversarially sparse
// color ids), the label-keyed partition constructors, the merge fast path,
// edge/delta statistics, pair enumeration, the crossover checker, and the
// byte-identity of OverlapMatch (edges *and* counters) on seeded instances.

#include <algorithm>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>

#include <gtest/gtest.h>

#include "core/alignment.h"
#include "core/delta.h"
#include "core/edit_distance.h"
#include "core/hybrid.h"
#include "core/overlap_align.h"
#include "core/pipeline_legacy.h"
#include "gen/category_gen.h"
#include "gen/textgen.h"
#include "rdf/merge.h"
#include "util/random.h"
#include "util/string_util.h"

namespace rdfalign {
namespace {

// ---------------------------------------------------------------- helpers ---

/// Random color vector. `style` 0: dense-ish ids in [0, n); 1: sparse
/// non-contiguous ids (multiples of 7 plus an offset); 2: adversarial ids
/// spread over the whole 32-bit range (forces the hash fallback).
std::vector<ColorId> RandomColors(Rng& rng, size_t n, int style) {
  std::vector<ColorId> colors(n);
  for (size_t i = 0; i < n; ++i) {
    switch (style) {
      case 0:
        colors[i] = static_cast<ColorId>(rng.Uniform(std::max<size_t>(n, 1)));
        break;
      case 1:
        colors[i] = static_cast<ColorId>(
            7 * rng.Uniform(std::max<size_t>(n / 2, 1)) + 13);
        break;
      default:
        colors[i] = static_cast<ColorId>(rng.Uniform(0xffffffffULL)) |
                    (i % 3 == 0 ? 0x80000000u : 0u);
        break;
    }
  }
  return colors;
}

std::pair<TripleGraph, TripleGraph> RandomVersionPair(uint64_t seed) {
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(0.05, /*versions=*/2, seed));
  return {chain.Version(0), chain.Version(1)};
}

// ------------------------------------------------------------- partitions ---

TEST(FlatPartitionEquivalence, FromColorsMatchesLegacyOnRandomInputs) {
  Rng rng(7);
  for (int style = 0; style < 3; ++style) {
    for (size_t trial = 0; trial < 40; ++trial) {
      const size_t n = rng.Uniform(300);
      std::vector<ColorId> colors = RandomColors(rng, n, style);
      Partition flat = Partition::FromColors(colors);
      auto [legacy_colors, legacy_count] =
          legacy::RenumberFirstOccurrence(colors);
      EXPECT_EQ(flat.colors(), legacy_colors)
          << "style=" << style << " trial=" << trial;
      EXPECT_EQ(flat.NumColors(), legacy_count);
    }
  }
}

TEST(FlatPartitionEquivalence, FromColorsHandlesAdversarialSentinelValues) {
  // Ids at the very top of the 32-bit range (including the sentinel value
  // used by the flat remap tables) must renumber like any other id.
  std::vector<ColorId> colors = {0xffffffffu, 0, 0xffffffffu, 0xfffffffeu, 0};
  Partition p = Partition::FromColors(colors);
  auto [legacy_colors, legacy_count] =
      legacy::RenumberFirstOccurrence(colors);
  EXPECT_EQ(p.colors(), legacy_colors);
  EXPECT_EQ(p.NumColors(), legacy_count);
  EXPECT_EQ(p.NumColors(), 3u);
}

TEST(FlatPartitionEquivalence, EquivalentAndFinerMatchLegacy) {
  Rng rng(11);
  for (size_t trial = 0; trial < 60; ++trial) {
    const size_t n = 1 + rng.Uniform(200);
    Partition a = Partition::FromColors(RandomColors(rng, n, trial % 3));
    // b is either a color-permuted copy of a, a coarsening, or independent.
    Partition b;
    switch (trial % 3) {
      case 0: {  // permuted copy: equivalent to a
        std::vector<ColorId> permuted(a.colors());
        for (ColorId& c : permuted) c = static_cast<ColorId>(c * 2654435761u);
        b = Partition::FromColors(std::move(permuted));
        break;
      }
      case 1: {  // coarsening: a is finer or equal
        std::vector<ColorId> coarse(a.colors());
        for (ColorId& c : coarse) c /= 2;
        b = Partition::FromColors(std::move(coarse));
        break;
      }
      default:
        b = Partition::FromColors(RandomColors(rng, n, 0));
        break;
    }
    EXPECT_EQ(Partition::Equivalent(a, b), legacy::PartitionEquivalent(a, b))
        << trial;
    EXPECT_EQ(Partition::IsFinerOrEqual(a, b),
              legacy::PartitionIsFinerOrEqual(a, b))
        << trial;
    EXPECT_EQ(Partition::IsFinerOrEqual(b, a),
              legacy::PartitionIsFinerOrEqual(b, a))
        << trial;
    EXPECT_TRUE(Partition::Equivalent(a, a));
    EXPECT_TRUE(Partition::IsFinerOrEqual(a, a));
  }
}

TEST(FlatPartitionEquivalence, ClassesCsrMatchesLegacyVectors) {
  Rng rng(13);
  for (size_t trial = 0; trial < 30; ++trial) {
    const size_t n = rng.Uniform(250);
    Partition p = Partition::FromColors(RandomColors(rng, n, trial % 3));
    PartitionClasses csr = p.Classes();
    std::vector<std::vector<NodeId>> legacy_classes =
        legacy::PartitionClassesVectors(p);
    ASSERT_EQ(csr.size(), legacy_classes.size());
    for (size_t c = 0; c < csr.size(); ++c) {
      std::span<const NodeId> members = csr[c];
      EXPECT_TRUE(std::equal(members.begin(), members.end(),
                             legacy_classes[c].begin(),
                             legacy_classes[c].end()))
          << "class " << c;
    }
  }
}

TEST(FlatPartitionEquivalence, LabelKeyedConstructorsMatchLegacy) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    auto [g1, g2] = RandomVersionPair(seed);
    auto cg = CombinedGraph::Build(g1, g2).value();
    const TripleGraph& g = cg.graph();
    EXPECT_EQ(LabelPartition(g).colors(), legacy::LabelPartition(g).colors());
    EXPECT_EQ(TrivialPartition(g).colors(),
              legacy::TrivialPartition(g).colors());
  }
}

TEST(FlatPartitionEquivalence, LabelKeyedConstructorsWithOversizedDictionary) {
  // Archive workloads share one Dictionary across many versions, so the
  // dictionary can dwarf one graph's node set; the constructors then take
  // the hash path instead of clearing an O(terms) flat table. Same colors
  // either way.
  auto dict = std::make_shared<Dictionary>();
  for (int i = 0; i < 20000; ++i) {
    dict->Intern("ex:unrelated-term-" + std::to_string(i));
  }
  GraphBuilder b(dict);
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId lit = b.AddLiteral("hello");
  NodeId blank1 = b.AddBlank("b1");
  NodeId blank2 = b.AddBlank("b2");
  b.AddTriple(s, p, lit);
  b.AddTriple(blank1, p, lit);
  b.AddTriple(blank2, p, lit);
  TripleGraph g = std::move(b.Build(true)).value();
  ASSERT_GT(g.dict().size(), 4 * g.NumNodes() + 1024);
  EXPECT_EQ(LabelPartition(g).colors(), legacy::LabelPartition(g).colors());
  EXPECT_EQ(TrivialPartition(g).colors(),
            legacy::TrivialPartition(g).colors());
  // Blanks: one shared class under ℓ_G, singletons under λ_Trivial.
  Partition lp = LabelPartition(g);
  EXPECT_EQ(lp.ColorOf(blank1), lp.ColorOf(blank2));
  Partition tp = TrivialPartition(g);
  EXPECT_NE(tp.ColorOf(blank1), tp.ColorOf(blank2));
}

// ------------------------------------------------------------------ merge ---

TEST(MergeEquivalence, FastBuildIsBitIdenticalToLegacyReindex) {
  for (uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    auto [g1, g2] = RandomVersionPair(seed);
    auto fast = CombinedGraph::Build(g1, g2).value();
    auto slow = CombinedGraph::BuildLegacy(g1, g2).value();
    ASSERT_TRUE(LabeledGraphsEqual(fast.graph(), slow.graph())) << seed;
    // The CSR indexes must match element for element, not just semantically.
    auto spans_equal = [](auto a, auto b) {
      return std::equal(a.begin(), a.end(), b.begin(), b.end());
    };
    EXPECT_TRUE(spans_equal(fast.graph().OutOffsets(),
                            slow.graph().OutOffsets()));
    EXPECT_TRUE(spans_equal(fast.graph().OutPairs(),
                            slow.graph().OutPairs()));
    EXPECT_TRUE(spans_equal(fast.graph().InOffsets(),
                            slow.graph().InOffsets()));
    EXPECT_TRUE(spans_equal(fast.graph().InSubjects(),
                            slow.graph().InSubjects()));
    EXPECT_EQ(fast.n1(), slow.n1());
    EXPECT_EQ(fast.e2(), slow.e2());
    // Node lookup by label behaves the same (first match wins per side).
    EXPECT_EQ(fast.graph().FindUri("not-there"), kInvalidNode);
  }
}

TEST(MergeEquivalence, EmptySidesMerge) {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  b1.AddUriTriple("ex:s", "ex:p", "ex:o");
  GraphBuilder b2(dict);
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto fast = CombinedGraph::Build(g1, g2).value();
  auto slow = CombinedGraph::BuildLegacy(g1, g2).value();
  EXPECT_TRUE(LabeledGraphsEqual(fast.graph(), slow.graph()));
  auto fast2 = CombinedGraph::Build(g2, g1).value();
  auto slow2 = CombinedGraph::BuildLegacy(g2, g1).value();
  EXPECT_TRUE(LabeledGraphsEqual(fast2.graph(), slow2.graph()));
  EXPECT_EQ(fast2.n1(), 0u);
}

// -------------------------------------------------------------- statistics ---

TEST(StatsEquivalence, EdgeAlignmentAndDeltaMatchLegacy) {
  for (uint64_t seed : {3ull, 4ull, 5ull, 6ull}) {
    auto [g1, g2] = RandomVersionPair(seed);
    auto cg = CombinedGraph::Build(g1, g2).value();
    for (int method = 0; method < 2; ++method) {
      Partition p = method == 0 ? TrivialPartition(cg.graph())
                                : HybridPartition(cg);
      EdgeAlignmentStats flat_stats = ComputeEdgeAlignment(cg, p);
      EdgeAlignmentStats legacy_stats = legacy::ComputeEdgeAlignment(cg, p);
      EXPECT_EQ(flat_stats.total_edges, legacy_stats.total_edges);
      EXPECT_EQ(flat_stats.aligned_edges, legacy_stats.aligned_edges);

      RdfDelta flat_delta = ComputeDelta(cg, p);
      RdfDelta legacy_delta = legacy::ComputeDelta(cg, p);
      EXPECT_EQ(flat_delta.unchanged, legacy_delta.unchanged);
      // added/deleted preserve triple order exactly.
      EXPECT_EQ(flat_delta.added, legacy_delta.added);
      EXPECT_EQ(flat_delta.deleted, legacy_delta.deleted);
      // The legacy rename order followed unordered_map iteration; compare
      // as sets of (source, target) node pairs.
      auto rename_set = [](const RdfDelta& d) {
        std::set<std::pair<NodeId, NodeId>> out;
        for (const UriRename& r : d.renamed_uris) {
          out.emplace(r.source, r.target);
        }
        return out;
      };
      EXPECT_EQ(rename_set(flat_delta), rename_set(legacy_delta));
      EXPECT_EQ(flat_delta.renamed_uris.size(),
                legacy_delta.renamed_uris.size());
    }
  }
}

TEST(StatsEquivalence, PairEnumerationAndCrossoverMatchLegacy) {
  for (uint64_t seed : {2ull, 3ull}) {
    auto [g1, g2] = RandomVersionPair(seed);
    auto cg = CombinedGraph::Build(g1, g2).value();
    Partition p = HybridPartition(cg);
    auto flat_pairs = EnumerateAlignedPairs(cg, p);
    auto legacy_pairs = legacy::EnumerateAlignedPairs(cg, p);
    std::set<std::pair<NodeId, NodeId>> flat_set(flat_pairs.begin(),
                                                 flat_pairs.end());
    std::set<std::pair<NodeId, NodeId>> legacy_set(legacy_pairs.begin(),
                                                   legacy_pairs.end());
    EXPECT_EQ(flat_set, legacy_set);
    EXPECT_EQ(flat_pairs.size(), legacy_pairs.size());
    EXPECT_EQ(HasCrossoverProperty(flat_pairs),
              legacy::HasCrossoverProperty(flat_pairs));
    EXPECT_TRUE(HasCrossoverProperty(flat_pairs));
    // Limit still respected, deterministically.
    auto limited = EnumerateAlignedPairs(cg, p, 5);
    EXPECT_LE(limited.size(), 5u);
    EXPECT_EQ(limited, EnumerateAlignedPairs(cg, p, 5));
  }
}

TEST(StatsEquivalence, CrossoverCheckerAgreesOnViolations) {
  std::vector<std::pair<NodeId, NodeId>> bad = {{1, 10}, {1, 11}, {2, 10}};
  EXPECT_FALSE(HasCrossoverProperty(bad));
  EXPECT_FALSE(legacy::HasCrossoverProperty(bad));
  bad.emplace_back(2, 11);
  EXPECT_TRUE(HasCrossoverProperty(bad));
  EXPECT_TRUE(legacy::HasCrossoverProperty(bad));
  // Duplicated pairs must not change the verdict.
  bad.push_back(bad.front());
  EXPECT_EQ(HasCrossoverProperty(bad), legacy::HasCrossoverProperty(bad));
}

// ------------------------------------------------------------ OverlapMatch ---

/// Word-set fixture in both representations (CSR and per-node vectors).
struct DualFixture {
  std::vector<NodeId> a_nodes;
  std::vector<NodeId> b_nodes;
  CharacterizingSets a_csr;
  CharacterizingSets b_csr;
  legacy::VectorCharSets a_vec;
  legacy::VectorCharSets b_vec;
  std::vector<std::string> a_text;
  std::vector<std::string> b_text;
};

DualFixture MakeDualFixture(uint64_t seed, size_t n, double typo_prob) {
  Rng rng(seed);
  DualFixture f;
  std::unordered_map<std::string, uint64_t> words;
  auto charset = [&](const std::string& text) {
    std::vector<uint64_t> ids;
    for (const std::string& w : SplitWords(text)) {
      auto [it, ins] = words.emplace(w, words.size());
      ids.push_back(it->second);
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };
  for (size_t i = 0; i < n; ++i) {
    std::string base = gen::RandomSentence(rng, 3, 7);
    std::string evolved =
        rng.Bernoulli(typo_prob) ? gen::ApplyTypo(base, rng) : base;
    f.a_nodes.push_back(static_cast<NodeId>(i));
    f.b_nodes.push_back(static_cast<NodeId>(10000 + i));
    f.a_text.push_back(base);
    f.b_text.push_back(evolved);
    std::vector<uint64_t> ca = charset(base);
    std::vector<uint64_t> cb = charset(evolved);
    f.a_csr.push_back(ca);
    f.b_csr.push_back(cb);
    f.a_vec.push_back(std::move(ca));
    f.b_vec.push_back(std::move(cb));
  }
  return f;
}

class OverlapMatchByteIdentity
    : public ::testing::TestWithParam<std::tuple<uint64_t, double, bool>> {};

TEST_P(OverlapMatchByteIdentity, EdgesAndCountersAreIdenticalToLegacy) {
  auto [seed, theta, paper_prefix] = GetParam();
  DualFixture f = MakeDualFixture(seed, 50, 0.5);
  auto sigma = [&](size_t ai, size_t bi) {
    // Deterministic, representation-independent distance.
    return NormalizedEditDistance(f.a_text[ai], f.b_text[bi]);
  };
  OverlapMatchOptions options;
  options.paper_prefix = paper_prefix;
  OverlapMatchStats flat_stats;
  OverlapMatchStats legacy_stats;
  BipartiteMatching flat = OverlapMatch(f.a_nodes, f.b_nodes, f.a_csr,
                                        f.b_csr, theta, sigma, options,
                                        &flat_stats);
  BipartiteMatching legacy_h =
      legacy::OverlapMatch(f.a_nodes, f.b_nodes, f.a_vec, f.b_vec, theta,
                           sigma, options, &legacy_stats);
  // Byte identity: same edges, same order, same distances, same counters.
  ASSERT_EQ(flat.edges.size(), legacy_h.edges.size());
  for (size_t i = 0; i < flat.edges.size(); ++i) {
    EXPECT_EQ(flat.edges[i].a, legacy_h.edges[i].a) << i;
    EXPECT_EQ(flat.edges[i].b, legacy_h.edges[i].b) << i;
    EXPECT_EQ(flat.edges[i].distance, legacy_h.edges[i].distance) << i;
  }
  EXPECT_EQ(flat_stats.candidates_probed, legacy_stats.candidates_probed);
  EXPECT_EQ(flat_stats.overlap_checked, legacy_stats.overlap_checked);
  EXPECT_EQ(flat_stats.sigma_checked, legacy_stats.sigma_checked);
  EXPECT_EQ(flat_stats.matched, legacy_stats.matched);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlapMatchByteIdentity,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5, 6),
                       ::testing::Values(0.35, 0.65, 0.9),
                       ::testing::Bool()));

TEST(OverlapMatchByteIdentityTest, EmptyAndDegenerateInputs) {
  DualFixture f = MakeDualFixture(9, 5, 0.0);
  auto zero = [](size_t, size_t) { return 0.0; };
  OverlapMatchStats s1, s2;
  auto e1 = OverlapMatch({}, f.b_nodes, {}, f.b_csr, 0.5, zero, {}, &s1);
  auto e2 = legacy::OverlapMatch({}, f.b_nodes, {}, f.b_vec, 0.5, zero, {},
                                 &s2);
  EXPECT_TRUE(e1.Empty());
  EXPECT_TRUE(e2.Empty());
  EXPECT_EQ(s1.candidates_probed, s2.candidates_probed);
}

// The full overlap alignment (word interning through Dictionary, streamed
// CSR char sets) still produces the same partition as before the rewrite on
// seeded version pairs — pinned against the aligner-level contract rather
// than a copied implementation.
TEST(OverlapAlignRegression, AlignedStatsStableAcrossRepresentations) {
  for (uint64_t seed : {5ull, 6ull}) {
    auto [g1, g2] = RandomVersionPair(seed);
    auto cg = CombinedGraph::Build(g1, g2).value();
    OverlapAlignResult r1 = OverlapAlign(cg);
    OverlapAlignResult r2 = OverlapAlign(cg);
    // Deterministic run-to-run.
    EXPECT_EQ(r1.xi.partition.colors(), r2.xi.partition.colors());
    EXPECT_EQ(r1.literal_matches, r2.literal_matches);
    EXPECT_EQ(r1.nonliteral_matches, r2.nonliteral_matches);
    // Anything the overlap method aligns must still satisfy crossover.
    auto pairs = EnumerateAlignedPairs(cg, r1.xi.partition, 2000);
    EXPECT_TRUE(HasCrossoverProperty(pairs));
  }
}

}  // namespace
}  // namespace rdfalign
