// AtomicFileWriter coverage: durability of the temp+fsync+rename pipeline,
// clean errno-carrying Status on every failure mode, stale-temp scrubbing,
// and the fork-based crash-consistency gate — a child process is SIGKILLed
// at every injected syscall and the survivor must load either the complete
// old file or the complete new file, never a torn one.

#include "store/atomic_writer.h"

#include <gtest/gtest.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "store/snapshot.h"
#include "test_util.h"
#include "util/fault_injector.h"

namespace rdfalign::store {
namespace {

std::string Scratch(const std::string& name) {
  return ::testing::TempDir() + "rdfalign_atomic_" + name;
}

std::string ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Any `<path>.tmp.*` siblings left in the directory.
size_t CountTemps(const std::string& path) {
  namespace fs = std::filesystem;
  const fs::path target(path);
  const std::string base = target.filename().string() + ".tmp.";
  size_t n = 0;
  std::error_code ec;
  for (fs::directory_iterator it(target.parent_path(), ec), end;
       !ec && it != end; it.increment(ec)) {
    if (it->path().filename().string().rfind(base, 0) == 0) ++n;
  }
  return n;
}

class AtomicWriterTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Reset(); }
};

TEST_F(AtomicWriterTest, WritesAndReplacesAtomically) {
  const std::string path = Scratch("replace");
  ASSERT_TRUE(AtomicWriteFile(path, "first", 5, "test").ok());
  EXPECT_EQ(ReadAllBytes(path), "first");
  ASSERT_TRUE(AtomicWriteFile(path, "second", 6, "test").ok());
  EXPECT_EQ(ReadAllBytes(path), "second");
  EXPECT_EQ(CountTemps(path), 0u);
  std::remove(path.c_str());
}

TEST_F(AtomicWriterTest, UnwritablePathReturnsErrnoTextNoPartialFile) {
  // The parent "directory" is a regular file, so opening the temp fails
  // with ENOTDIR for any user (a chmod-based probe is a no-op under root).
  const std::string blocker = Scratch("blocker");
  ASSERT_TRUE(AtomicWriteFile(blocker, "x", 1, "test").ok());
  const std::string path = blocker + "/child.snap";
  const Status st = AtomicWriteFile(path, "data", 4, "test");
  ASSERT_FALSE(st.ok());
  EXPECT_TRUE(st.IsIOError());
  EXPECT_NE(st.message().find("cannot open file for writing"),
            std::string::npos)
      << st.message();
  EXPECT_NE(st.message().find("Not a directory"), std::string::npos)
      << st.message();
  EXPECT_FALSE(std::filesystem::exists(path));
  std::remove(blocker.c_str());
}

TEST_F(AtomicWriterTest, WriteFaultLeavesOldFileAndNoTemp) {
  const std::string path = Scratch("wfault");
  ASSERT_TRUE(AtomicWriteFile(path, "old", 3, "test").ok());
  ASSERT_TRUE(
      FaultInjector::ArmFromSpec("store.write@1=error:ENOSPC").ok());
  const std::string big(1 << 20, 'x');  // larger than the stream buffer
  const Status st = AtomicWriteFile(path, big.data(), big.size(), "test");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("No space left on device"), std::string::npos)
      << st.message();
  EXPECT_EQ(ReadAllBytes(path), "old");
  EXPECT_EQ(CountTemps(path), 0u);
  std::remove(path.c_str());
}

TEST_F(AtomicWriterTest, FsyncAndRenameFaultsLeaveOldFileAndNoTemp) {
  for (const char* spec :
       {"store.fsync@1=error:EIO", "store.rename@1=error:EIO"}) {
    FaultInjector::Reset();
    const std::string path = Scratch("cfault");
    ASSERT_TRUE(AtomicWriteFile(path, "old", 3, "test").ok());
    ASSERT_TRUE(FaultInjector::ArmFromSpec(spec).ok());
    const Status st = AtomicWriteFile(path, "new!", 4, "test");
    ASSERT_FALSE(st.ok()) << spec;
    EXPECT_NE(st.message().find("Input/output error"), std::string::npos)
        << spec << ": " << st.message();
    EXPECT_EQ(ReadAllBytes(path), "old") << spec;
    EXPECT_EQ(CountTemps(path), 0u) << spec;
    std::remove(path.c_str());
  }
}

TEST_F(AtomicWriterTest, EintrStormAndShortWritesAreTransparent) {
  const std::string path = Scratch("eintr");
  ASSERT_TRUE(
      FaultInjector::ArmFromSpec("store.write@1=short;store.write@2=eintr4")
          .ok());
  const std::string payload(200000, 'y');
  ASSERT_TRUE(
      AtomicWriteFile(path, payload.data(), payload.size(), "test").ok());
  EXPECT_EQ(ReadAllBytes(path), payload);
  EXPECT_EQ(CountTemps(path), 0u);
  std::remove(path.c_str());
}

TEST_F(AtomicWriterTest, SnapshotWriterRoutesThroughAtomicPipeline) {
  const std::string path = Scratch("snap");
  const TripleGraph g = rdfalign::testing::Fig2Graph();
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  EXPECT_TRUE(LoadSnapshot(path, nullptr).ok());
  EXPECT_EQ(CountTemps(path), 0u);

  // Unwritable target: clean errno-bearing Status, old file untouched.
  const std::string old_bytes = ReadAllBytes(path);
  ASSERT_TRUE(FaultInjector::ArmFromSpec("store.write@1=error:EDQUOT").ok());
  const Status st = WriteSnapshot(g, path);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("error writing snapshot"), std::string::npos)
      << st.message();
  EXPECT_EQ(ReadAllBytes(path), old_bytes);
  EXPECT_EQ(CountTemps(path), 0u);
  std::remove(path.c_str());
}

TEST_F(AtomicWriterTest, CleanupRemovesOnlyDeadWritersTemps) {
  const std::string path = Scratch("scrub");
  ASSERT_TRUE(AtomicWriteFile(path, "v", 1, "test").ok());
  const std::string dead = path + ".tmp.999999999";  // no such pid
  const std::string junk = path + ".tmp.notapid";
  const std::string live = path + ".tmp." + std::to_string(::getpid());
  for (const std::string& p : {dead, junk, live}) {
    std::ofstream(p, std::ios::binary) << "partial";
  }
  EXPECT_EQ(CleanupStaleTemps(path), 2u);
  EXPECT_FALSE(std::filesystem::exists(dead));
  EXPECT_FALSE(std::filesystem::exists(junk));
  EXPECT_TRUE(std::filesystem::exists(live)) << "live writer's temp kept";
  EXPECT_EQ(ReadAllBytes(path), "v");
  std::remove(live.c_str());
  std::remove(path.c_str());
}

// The crash-consistency gate: a child is SIGKILLed at every injected
// syscall ordinal of the save pipeline (simulated power cut: no flush, no
// unwind). Whatever the kill point, the survivor must hold either the
// complete old bytes or the complete new bytes — and after the stale-temp
// scrub, no `.tmp` litter.
TEST_F(AtomicWriterTest, CrashAtEveryFailpointLeavesOldOrNewNeverTorn) {
  const TripleGraph g_old = rdfalign::testing::Fig2Graph();
  const TripleGraph g_new = rdfalign::testing::Fig3Graphs().second;
  // Reference images rendered in-process (snapshot writing is
  // deterministic for a given graph).
  std::ostringstream old_image(std::ios::binary);
  ASSERT_TRUE(WriteSnapshotToStream(g_old, old_image, "old").ok());
  std::ostringstream new_image(std::ios::binary);
  ASSERT_TRUE(WriteSnapshotToStream(g_new, new_image, "new").ok());
  const std::string old_bytes = std::move(old_image).str();
  const std::string new_bytes = std::move(new_image).str();
  ASSERT_NE(old_bytes, new_bytes);

  const char* kill_specs[] = {
      "store.open@1=kill",   "store.write@1=kill",  "store.write@2=kill",
      "store.fsync@1=kill",  "store.rename@1=kill", "store.dirsync@1=kill",
  };
  for (const char* spec : kill_specs) {
    const std::string path = Scratch("crash");
    ASSERT_TRUE(
        AtomicWriteFile(path, old_bytes.data(), old_bytes.size(), "snapshot")
            .ok());

    const pid_t child = ::fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
      // In the child: arm the kill and run the save. The injector SIGKILLs
      // the process at the armed syscall; if the ordinal is never reached
      // the save completes and the child exits 0.
      if (!FaultInjector::ArmFromSpec(spec).ok()) ::_exit(10);
      const Status st =
          AtomicWriteFile(path, new_bytes.data(), new_bytes.size(),
                          "snapshot");
      ::_exit(st.ok() ? 0 : 11);
    }
    int wstatus = 0;
    ASSERT_EQ(::waitpid(child, &wstatus, 0), child);
    const bool killed =
        WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
    const bool completed = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
    EXPECT_TRUE(killed || completed)
        << spec << ": unexpected child status " << wstatus;

    // The survivor is bit-identical to old or new — never torn.
    const std::string survivor = ReadAllBytes(path);
    EXPECT_TRUE(survivor == old_bytes || survivor == new_bytes)
        << spec << ": survivor is " << survivor.size() << " bytes, old="
        << old_bytes.size() << " new=" << new_bytes.size();
    // ... and it parses as a snapshot.
    EXPECT_TRUE(LoadSnapshotFromMemory(
                    nullptr,
                    reinterpret_cast<const unsigned char*>(survivor.data()),
                    survivor.size(), nullptr)
                    .ok())
        << spec;

    // The dead child's temp (if the kill landed before rename) is scrubbed
    // by the next writer's startup pass.
    CleanupStaleTemps(path);
    EXPECT_EQ(CountTemps(path), 0u) << spec;
    const std::string after = ReadAllBytes(path);
    EXPECT_EQ(after, survivor) << spec << ": scrub touched the target";
    std::remove(path.c_str());
  }
}

}  // namespace
}  // namespace rdfalign::store
