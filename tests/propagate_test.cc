#include "core/propagate.h"

#include <gtest/gtest.h>

#include "core/alignment.h"
#include "core/enrich.h"
#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(ReweightTest, AveragesOutEdgeWeights) {
  // s has two out-edges (p, o1), (p, o2) with ω(p)=0, ω(o1)=0.4, ω(o2)=0.8:
  // reweight(s) = (0.4 + 0.8)/2 = 0.6.
  GraphBuilder b;
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId o1 = b.AddLiteral("one");
  NodeId o2 = b.AddLiteral("two");
  b.AddTriple(s, p, o1);
  b.AddTriple(s, p, o2);
  auto g = std::move(b.Build(true)).value();
  std::vector<double> w(g.NumNodes(), 0.0);
  w[o1] = 0.4;
  w[o2] = 0.8;
  double delta = ReweightStep(g, {s}, w);
  EXPECT_NEAR(w[s], 0.6, 1e-12);
  EXPECT_NEAR(delta, 0.6, 1e-12);
  // Sinks keep their weight.
  std::vector<double> w2(g.NumNodes(), 0.25);
  EXPECT_DOUBLE_EQ(ReweightStep(g, {o1}, w2), 0.0);
  EXPECT_DOUBLE_EQ(w2[o1], 0.25);
}

TEST(ReweightTest, PredicateWeightEntersViaOPlus) {
  GraphBuilder b;
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId o = b.AddLiteral("o");
  b.AddTriple(s, p, o);
  auto g = std::move(b.Build(true)).value();
  std::vector<double> w(g.NumNodes(), 0.0);
  w[p] = 0.7;
  w[o] = 0.6;
  ReweightStep(g, {s}, w);
  // (0.7 ⊕ 0.6)/1 = 1.0 (clamped).
  EXPECT_DOUBLE_EQ(w[s], 1.0);
}

TEST(ReweightTest, JacobiUpdateIsOrderIndependent) {
  // x -> y -> literal(0.9); updating {x, y} must use y's OLD weight for x.
  GraphBuilder b;
  NodeId x = b.AddBlank("x");
  NodeId y = b.AddBlank("y");
  NodeId p = b.AddUri("ex:p");
  NodeId lit = b.AddLiteral("v");
  b.AddTriple(x, p, y);
  b.AddTriple(y, p, lit);
  auto g = std::move(b.Build(true)).value();
  std::vector<double> w(g.NumNodes(), 0.0);
  w[lit] = 0.9;
  ReweightStep(g, {x, y}, w);
  EXPECT_DOUBLE_EQ(w[y], 0.9);
  EXPECT_DOUBLE_EQ(w[x], 0.0);  // used y's old weight 0
  ReweightStep(g, {x, y}, w);
  EXPECT_DOUBLE_EQ(w[x], 0.9);  // now sees the propagated weight
}

TEST(PropagateTest, TrivialStartEqualsHybrid) {
  // §4.5: Propagate((λTrivial, 0)) = (λHybrid, 0).
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  WeightedPartition xi =
      MakeZeroWeighted(TrivialPartition(cg.graph()));
  WeightedPartition propagated = Propagate(cg, std::move(xi));
  Partition hybrid = HybridPartition(cg);
  EXPECT_TRUE(Partition::Equivalent(propagated.partition, hybrid));
  for (double w : propagated.weight) EXPECT_DOUBLE_EQ(w, 0.0);
}

class PropagatePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PropagatePropertyTest, TrivialStartEqualsHybridOnRandomPairs) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  WeightedPartition propagated =
      Propagate(cg, MakeZeroWeighted(TrivialPartition(cg.graph())));
  Partition hybrid = HybridPartition(cg);
  EXPECT_TRUE(Partition::Equivalent(propagated.partition, hybrid))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropagatePropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(PropagateTest, WeightsFlowFromEnrichedCluster) {
  // v1: s1 -p-> lit1 ; v2: s2 -p-> lit2. Enrich matches lit1/lit2 at 0.4;
  // propagation then gives the unaligned subjects the averaged weight and
  // aligns them through the shared out-color.
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  NodeId s1 = b1.AddUri("ex:s1");
  NodeId p1 = b1.AddUri("ex:p");
  NodeId l1 = b1.AddLiteral("alpha beta");
  b1.AddTriple(s1, p1, l1);
  GraphBuilder b2(dict);
  NodeId s2 = b2.AddUri("ex:s2");
  NodeId p2 = b2.AddUri("ex:p");
  NodeId l2 = b2.AddLiteral("alpha betas");
  b2.AddTriple(s2, p2, l2);
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);

  WeightedPartition xi = MakeZeroWeighted(HybridPartition(cg));
  NodeId l2c = cg.FromTarget(l2);
  NodeId s2c = cg.FromTarget(s2);
  ASSERT_NE(xi.partition.ColorOf(l1), xi.partition.ColorOf(l2c));

  BipartiteMatching h;
  h.edges.push_back(MatchEdge{l1, l2c, 0.4});
  WeightedPartition out = Propagate(cg, Enrich(xi, h));
  // Subjects now share a class (same out-color) with weight
  // (ω(p) ⊕ ω(lit))/1 = 0.2.
  EXPECT_EQ(out.partition.ColorOf(s1), out.partition.ColorOf(s2c));
  EXPECT_NEAR(out.weight[s1], 0.2, 1e-9);
  EXPECT_NEAR(out.weight[s2c], 0.2, 1e-9);
}

TEST(PropagateTest, WeightIterationConvergesOnCycles) {
  // Two-node blank cycle attached to a weighted literal: the weight
  // iteration must stabilize under ε.
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  NodeId x = b1.AddBlank("x");
  NodeId y = b1.AddBlank("y");
  NodeId p = b1.AddUri("ex:p");
  b1.AddTriple(x, p, y);
  b1.AddTriple(y, p, x);
  GraphBuilder b2(dict);
  NodeId x2 = b2.AddBlank("x2");
  NodeId y2 = b2.AddBlank("y2");
  NodeId p2 = b2.AddUri("ex:p");
  b2.AddTriple(x2, p2, y2);
  b2.AddTriple(y2, p2, x2);
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);
  WeightedPartition xi = MakeZeroWeighted(TrivialPartition(cg.graph()));
  PropagateOptions options;
  options.epsilon = 1e-6;
  WeightedPartition out = Propagate(cg, std::move(xi), options);
  // The cycle nodes align (identical structure) with weight 0.
  EXPECT_EQ(out.partition.ColorOf(x), out.partition.ColorOf(cg.FromTarget(x2)));
  EXPECT_NEAR(out.weight[x], 0.0, 1e-6);
}

}  // namespace
}  // namespace rdfalign
