#include "core/archive.h"

#include <gtest/gtest.h>

#include "gen/efo_gen.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(ArchiveTest, SingleVersionStoresEveryTriple) {
  VersionArchive archive;
  TripleGraph g = testing::Fig2Graph();
  auto v = archive.Append(g);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0u);
  ArchiveStats stats = archive.Stats();
  EXPECT_EQ(stats.versions, 1u);
  EXPECT_EQ(stats.triple_version_pairs, g.NumEdges());
  EXPECT_LE(stats.distinct_triples, g.NumEdges());
  EXPECT_EQ(stats.interval_records, stats.distinct_triples);
}

TEST(ArchiveTest, IdenticalVersionsCompressPerfectly) {
  VersionArchive archive;
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(archive.Append(g).ok());
  }
  ArchiveStats stats = archive.Stats();
  EXPECT_EQ(stats.versions, 4u);
  // One interval [0,4) per distinct triple.
  EXPECT_EQ(stats.interval_records, stats.distinct_triples);
  EXPECT_NEAR(stats.CompressionRatio(), 4.0, 0.6);
}

TEST(ArchiveTest, RenamedUriKeepsEntityIdentity) {
  auto [g1, g2] = testing::Fig3Graphs();
  VersionArchive archive;
  ASSERT_TRUE(archive.Append(g1).ok());
  ASSERT_TRUE(archive.Append(g2).ok());
  // u (version 0) and v (version 1) are the same entity under hybrid.
  EntityId u = archive.EntityOf(0, g1.FindUri("ex:u"));
  EntityId v = archive.EntityOf(1, g2.FindUri("ex:v"));
  EXPECT_EQ(u, v);
  // Blank b1 (v0) chains to b5 (v1).
  EXPECT_EQ(archive.EntityOf(0, g1.FindBlank("b1")),
            archive.EntityOf(1, g2.FindBlank("b5")));
  // A triple surviving the rename occupies one interval [0, 2).
  ArchiveStats stats = archive.Stats();
  EXPECT_GT(stats.CompressionRatio(), 1.5);
}

TEST(ArchiveTest, ReconstructionMatchesVersionTripleCounts) {
  auto [g1, g2] = testing::Fig3Graphs();
  VersionArchive archive;
  ASSERT_TRUE(archive.Append(g1).ok());
  ASSERT_TRUE(archive.Append(g2).ok());
  // Reconstruction at each version yields the entity-level triples of that
  // version. Version 0 seeds fresh entities (b2/b3 stay distinct there);
  // merging happens when later versions chain onto one entity.
  auto at0 = archive.TriplesAt(0);
  auto at1 = archive.TriplesAt(1);
  EXPECT_EQ(at0.size(), g1.NumEdges());
  EXPECT_EQ(at1.size(), g2.NumEdges());
}

TEST(ArchiveTest, MismatchedDictionaryIsRejected) {
  VersionArchive archive;
  TripleGraph g1 = testing::Fig2Graph();
  TripleGraph g2 = testing::Fig2Graph();  // fresh dictionary
  ASSERT_TRUE(archive.Append(g1).ok());
  auto second = archive.Append(g2);
  EXPECT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsInvalidArgument());
}

TEST(ArchiveTest, EvolvingChainCompresses) {
  gen::EfoOptions options;
  options.initial_classes = 40;
  options.versions = 5;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  VersionArchive archive;
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    ASSERT_TRUE(archive.Append(chain.Version(v)).ok());
  }
  ArchiveStats stats = archive.Stats();
  EXPECT_EQ(stats.versions, 5u);
  // Most triples survive across versions, so intervals compress well
  // (the §6 "triples enter and leave with their subject" hypothesis).
  EXPECT_GT(stats.CompressionRatio(), 2.0);
}

}  // namespace
}  // namespace rdfalign
