#include "core/overlap.h"

#include <gtest/gtest.h>

#include <set>

#include "core/edit_distance.h"
#include "gen/textgen.h"
#include "util/random.h"

namespace rdfalign {
namespace {

TEST(OverlapMeasureTest, KnownValues) {
  EXPECT_DOUBLE_EQ(OverlapMeasure({1, 2, 3}, {2, 3, 4}), 2.0 / 4.0);
  EXPECT_DOUBLE_EQ(OverlapMeasure({1, 2}, {1, 2}), 1.0);
  EXPECT_DOUBLE_EQ(OverlapMeasure({1}, {2}), 0.0);
  EXPECT_DOUBLE_EQ(OverlapMeasure({}, {}), 1.0);  // by definition
  EXPECT_DOUBLE_EQ(OverlapMeasure({1}, {}), 0.0);
  EXPECT_DOUBLE_EQ(DiffMeasure({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(DiffMeasure({}, {}), 0.0);
}

// A synthetic matching task: A and B hold word-set characterizations; σ is
// the normalized edit distance on the concatenated words.
struct MatchFixture {
  std::vector<NodeId> a_nodes;
  std::vector<NodeId> b_nodes;
  CharacterizingSets a_char;
  CharacterizingSets b_char;
  std::vector<std::string> a_text;
  std::vector<std::string> b_text;

  std::function<double(size_t, size_t)> Sigma() const {
    return [this](size_t ai, size_t bi) {
      return NormalizedEditDistance(a_text[ai], b_text[bi]);
    };
  }
};

MatchFixture MakeFixture(uint64_t seed, size_t n, double typo_prob) {
  Rng rng(seed);
  MatchFixture f;
  std::unordered_map<std::string, uint64_t> words;
  auto charset = [&](const std::string& text) {
    std::vector<uint64_t> ids;
    size_t start = 0;
    while (start < text.size()) {
      size_t end = text.find(' ', start);
      if (end == std::string::npos) end = text.size();
      auto [it, ins] =
          words.emplace(text.substr(start, end - start), words.size());
      ids.push_back(it->second);
      start = end + 1;
    }
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
  };
  for (size_t i = 0; i < n; ++i) {
    std::string base = gen::RandomSentence(rng, 3, 6);
    std::string evolved =
        rng.Bernoulli(typo_prob) ? gen::ApplyTypo(base, rng) : base;
    f.a_nodes.push_back(static_cast<NodeId>(i));
    f.b_nodes.push_back(static_cast<NodeId>(1000 + i));
    f.a_text.push_back(base);
    f.b_text.push_back(evolved);
    f.a_char.push_back(charset(base));
    f.b_char.push_back(charset(evolved));
  }
  return f;
}

TEST(OverlapMatchTest, FindsIdenticalSets) {
  MatchFixture f = MakeFixture(1, 20, /*typo_prob=*/0.0);
  auto h = OverlapMatch(f.a_nodes, f.b_nodes, f.a_char, f.b_char, 0.65,
                        f.Sigma());
  // Every a-node must match its twin (σ = 0 < θ), possibly others too.
  std::set<std::pair<NodeId, NodeId>> edges;
  for (const MatchEdge& e : h.edges) edges.emplace(e.a, e.b);
  for (size_t i = 0; i < f.a_nodes.size(); ++i) {
    EXPECT_TRUE(edges.count({f.a_nodes[i], f.b_nodes[i]}) > 0) << i;
  }
}

TEST(OverlapMatchTest, EmptyInputs) {
  MatchFixture f = MakeFixture(2, 4, 0.0);
  auto empty = OverlapMatch({}, f.b_nodes, {}, f.b_char, 0.65, f.Sigma());
  EXPECT_TRUE(empty.Empty());
  auto empty2 = OverlapMatch(f.a_nodes, {}, f.a_char, {}, 0.65, f.Sigma());
  EXPECT_TRUE(empty2.Empty());
}

TEST(OverlapMatchTest, StatsAreFilled) {
  MatchFixture f = MakeFixture(3, 30, 0.3);
  OverlapMatchStats stats;
  auto h = OverlapMatch(f.a_nodes, f.b_nodes, f.a_char, f.b_char, 0.65,
                        f.Sigma(), {}, &stats);
  EXPECT_EQ(stats.matched, h.NumEdges());
  EXPECT_GE(stats.sigma_checked, stats.matched);
  EXPECT_GE(stats.overlap_checked, stats.sigma_checked);
  EXPECT_GE(stats.candidates_probed, stats.overlap_checked);
  // The index pruned something relative to the full cross product.
  EXPECT_LT(stats.overlap_checked, f.a_nodes.size() * f.b_nodes.size());
}

// Completeness: the indexed heuristic finds exactly the brute-force pairs.
class OverlapCompleteness
    : public ::testing::TestWithParam<std::tuple<uint64_t, double>> {};

TEST_P(OverlapCompleteness, MatchesBruteForceAtEveryTheta) {
  auto [seed, theta] = GetParam();
  MatchFixture f = MakeFixture(seed, 40, 0.5);
  auto indexed = OverlapMatch(f.a_nodes, f.b_nodes, f.a_char, f.b_char,
                              theta, f.Sigma());
  auto brute = OverlapMatchBruteForce(f.a_nodes, f.b_nodes, f.a_char,
                                      f.b_char, theta, f.Sigma());
  std::set<std::pair<NodeId, NodeId>> lhs;
  std::set<std::pair<NodeId, NodeId>> rhs;
  for (const MatchEdge& e : indexed.edges) lhs.emplace(e.a, e.b);
  for (const MatchEdge& e : brute.edges) rhs.emplace(e.a, e.b);
  EXPECT_EQ(lhs, rhs) << "seed=" << seed << " theta=" << theta;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OverlapCompleteness,
    ::testing::Combine(::testing::Values<uint64_t>(1, 2, 3, 4, 5),
                       ::testing::Values(0.35, 0.5, 0.65, 0.8, 0.95)));

TEST(OverlapMatchTest, PaperPrefixCanMissBelowHalf) {
  // Documented behaviour: with θ < 0.5 the paper's ⌈kθ⌉ prefix is not
  // guaranteed complete; the default prefix is. This test pins the default
  // to brute-force at θ=0.35 on an adversarial instance where the shared
  // objects are the most frequent ones.
  std::vector<NodeId> a{0};
  std::vector<NodeId> b{1, 2, 3};
  // char(a) = {1,2,3,4,5,6}; the matching partner shares {4,5,6} (overlap
  // 0.5... tuned below); objects 1,2,3 are rare (only in a), 4,5,6 frequent.
  CharacterizingSets ac{{1, 2, 3, 4, 5, 6}};
  CharacterizingSets bc{{4, 5, 6}, {4, 5, 6, 7}, {4, 5, 6, 8}};
  auto zero = [](size_t, size_t) { return 0.0; };
  auto brute = OverlapMatchBruteForce(a, b, ac, bc, 0.35, zero);
  auto sound = OverlapMatch(a, b, ac, bc, 0.35, zero);
  std::set<std::pair<NodeId, NodeId>> lhs;
  std::set<std::pair<NodeId, NodeId>> rhs;
  for (const MatchEdge& e : sound.edges) lhs.emplace(e.a, e.b);
  for (const MatchEdge& e : brute.edges) rhs.emplace(e.a, e.b);
  EXPECT_EQ(lhs, rhs);
  // overlap({1..6},{4,5,6}) = 3/6 = 0.5 >= 0.35: must be found.
  EXPECT_TRUE(lhs.count({0, 1}) > 0);
}

}  // namespace
}  // namespace rdfalign
