#include "gen/ground_truth.h"

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign::gen {
namespace {

using rdfalign::CombinedGraph;
using rdfalign::Dictionary;
using rdfalign::GraphBuilder;
using rdfalign::HybridPartition;
using rdfalign::NodeId;
using rdfalign::Partition;
using rdfalign::TripleGraph;

TEST(GroundTruthTest, LookupBothDirections) {
  GroundTruth gt;
  gt.AddPair(3, 8);
  gt.AddPair(4, 9);
  EXPECT_EQ(gt.NumPairs(), 2u);
  EXPECT_EQ(gt.TargetOf(3), 8u);
  EXPECT_EQ(gt.SourceOf(9), 4u);
  EXPECT_EQ(gt.TargetOf(99), rdfalign::kInvalidNode);
  EXPECT_EQ(gt.SourceOf(99), rdfalign::kInvalidNode);
}

// A controlled scenario covering all four Fig. 14 categories:
//   v1 nodes: kept (aligned correctly), fuzzy (hybrid merges extra),
//             dropped (deleted in v2), lost (exists in both, unaligned).
struct PrecisionFixture {
  PrecisionFixture() {
    auto dict = std::make_shared<Dictionary>();
    GraphBuilder b1(dict);
    {
      NodeId kept = b1.AddUri("v1:kept");
      NodeId lost = b1.AddUri("v1:lost");
      NodeId dropped = b1.AddUri("v1:dropped");
      NodeId p = b1.AddUri("ex:p");
      b1.AddTriple(kept, p, b1.AddLiteral("stable value"));
      b1.AddTriple(lost, p, b1.AddLiteral("original text"));
      b1.AddTriple(dropped, p, b1.AddLiteral("doomed"));
    }
    GraphBuilder b2(dict);
    {
      NodeId kept = b2.AddUri("v2:kept");
      NodeId lost = b2.AddUri("v2:lost");
      NodeId added = b2.AddUri("v2:added");
      NodeId p = b2.AddUri("ex:p");
      b2.AddTriple(kept, p, b2.AddLiteral("stable value"));
      // "lost" changed all its content: hybrid cannot align it.
      b2.AddTriple(lost, p, b2.AddLiteral("fully rewritten"));
      // "added" mimics the dropped node's shape: it will falsely absorb
      // nothing (its literal differs), it stays unaligned -> true negative.
      b2.AddTriple(added, p, b2.AddLiteral("brand new"));
    }
    g1 = std::move(b1.Build(true)).value();
    g2 = std::move(b2.Build(true)).value();
    cg = std::make_unique<CombinedGraph>(testing::Combine(g1, g2));
    gt.AddPair(g1.FindUri("v1:kept"), g2.FindUri("v2:kept"));
    gt.AddPair(g1.FindUri("v1:lost"), g2.FindUri("v2:lost"));
  }
  TripleGraph g1, g2;
  std::unique_ptr<CombinedGraph> cg;
  GroundTruth gt;
};

TEST(PrecisionTest, CategoriesOnControlledScenario) {
  PrecisionFixture f;
  Partition hybrid = HybridPartition(*f.cg);
  PrecisionStats stats = EvaluatePrecision(*f.cg, hybrid, f.gt);
  // kept aligns exactly on both sides -> 2 exact.
  EXPECT_EQ(stats.exact, 2u);
  // lost has a partner but isn't aligned to it -> 2 missing.
  EXPECT_EQ(stats.missing, 2u);
  // dropped/added have no partner; whether they collide (false) or stay
  // unaligned (true negative) they must be accounted for.
  EXPECT_EQ(stats.false_matches + stats.true_negatives +
                stats.exact + stats.inclusive + stats.missing,
            stats.evaluated);
  EXPECT_GT(stats.evaluated, 4u);
}

TEST(PrecisionTest, PerfectAlignmentScoresAllExact) {
  // Self-alignment with the ground truth being the identity-by-label map.
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = testing::Fig2Graph(dict);
  TripleGraph g2 = testing::Fig2Graph(dict);
  auto cg = testing::Combine(g1, g2);
  GroundTruth gt;
  for (NodeId n = 0; n < g1.NumNodes(); ++n) {
    gt.AddPair(n, n);  // same builder order on both sides
  }
  Partition hybrid = HybridPartition(cg);
  PrecisionStats stats = EvaluatePrecision(cg, hybrid, gt,
                                           /*non_literals_only=*/false);
  // b2/b3 are bisimilar duplicates: they land in one class of size 2 per
  // side, so they score inclusive, everything else exact.
  EXPECT_EQ(stats.inclusive, 4u);
  EXPECT_EQ(stats.exact, stats.evaluated - 4u);
  EXPECT_EQ(stats.missing, 0u);
  EXPECT_EQ(stats.false_matches, 0u);
}

TEST(PrecisionTest, LiteralFilter) {
  PrecisionFixture f;
  Partition hybrid = HybridPartition(*f.cg);
  PrecisionStats with = EvaluatePrecision(*f.cg, hybrid, f.gt, false);
  PrecisionStats without = EvaluatePrecision(*f.cg, hybrid, f.gt, true);
  EXPECT_GT(with.evaluated, without.evaluated);
}

}  // namespace
}  // namespace rdfalign::gen
