#include "rdf/graph.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "rdf/dictionary.h"

namespace rdfalign {
namespace {

TEST(DictionaryTest, InternIsIdempotent) {
  Dictionary d;
  LexId a = d.Intern("http://x");
  LexId b = d.Intern("http://x");
  EXPECT_EQ(a, b);
  EXPECT_EQ(d.size(), 1u);
  EXPECT_EQ(d.Get(a), "http://x");
}

TEST(DictionaryTest, FindWithoutIntern) {
  Dictionary d;
  EXPECT_EQ(d.Find("missing"), kInvalidLex);
  LexId a = d.Intern("present");
  EXPECT_EQ(d.Find("present"), a);
}

TEST(DictionaryTest, ManyStringsStayStable) {
  Dictionary d;
  std::vector<LexId> ids;
  for (int i = 0; i < 1000; ++i) {
    ids.push_back(d.Intern("s" + std::to_string(i)));
  }
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(d.Get(ids[i]), "s" + std::to_string(i));
  }
}

TEST(GraphBuilderTest, DeduplicatesUrisAndLiterals) {
  GraphBuilder b;
  NodeId u1 = b.AddUri("ex:a");
  NodeId u2 = b.AddUri("ex:a");
  EXPECT_EQ(u1, u2);
  NodeId l1 = b.AddLiteral("x");
  NodeId l2 = b.AddLiteral("x");
  EXPECT_EQ(l1, l2);
  // A URI and a literal with the same lexical form are distinct nodes.
  NodeId u3 = b.AddUri("x");
  EXPECT_NE(u3, l1);
}

TEST(GraphBuilderTest, NamedBlanksDedupAnonymousDoNot) {
  GraphBuilder b;
  EXPECT_EQ(b.AddBlank("b1"), b.AddBlank("b1"));
  EXPECT_NE(b.AddBlank(), b.AddBlank());
}

TEST(GraphBuilderTest, BuildsValidGraph) {
  GraphBuilder b;
  b.AddLiteralTriple("ex:s", "ex:p", "value");
  b.AddUriTriple("ex:s", "ex:q", "ex:o");
  auto g = b.Build(true);
  ASSERT_TRUE(g.ok()) << g.status();
  EXPECT_EQ(g->NumNodes(), 5u);  // s, p, q, o, "value"
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(GraphBuilderTest, DuplicateTriplesCollapse) {
  GraphBuilder b;
  b.AddUriTriple("ex:s", "ex:p", "ex:o");
  b.AddUriTriple("ex:s", "ex:p", "ex:o");
  auto g = b.Build(true);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(GraphValidationTest, RejectsLiteralSubject) {
  GraphBuilder b;
  NodeId lit = b.AddLiteral("x");
  NodeId p = b.AddUri("ex:p");
  NodeId o = b.AddUri("ex:o");
  b.AddTriple(lit, p, o);
  auto g = b.Build(true);
  EXPECT_FALSE(g.ok());
  EXPECT_TRUE(g.status().IsInvalidArgument());
}

TEST(GraphValidationTest, RejectsLiteralAndBlankPredicates) {
  {
    GraphBuilder b;
    NodeId s = b.AddUri("ex:s");
    NodeId lit = b.AddLiteral("p");
    b.AddTriple(s, lit, s);
    EXPECT_FALSE(b.Build(true).ok());
  }
  {
    GraphBuilder b;
    NodeId s = b.AddUri("ex:s");
    NodeId blank = b.AddBlank("b");
    b.AddTriple(s, blank, s);
    EXPECT_FALSE(b.Build(true).ok());
  }
}

TEST(GraphValidationTest, BlankSubjectAndObjectAreFine) {
  GraphBuilder b;
  NodeId s = b.AddBlank("b1");
  NodeId p = b.AddUri("ex:p");
  NodeId o = b.AddBlank("b2");
  b.AddTriple(s, p, o);
  EXPECT_TRUE(b.Build(true).ok());
}

TEST(TripleGraphTest, OutNeighborhoodsAreSortedSlices) {
  GraphBuilder b;
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId q = b.AddUri("ex:q");
  NodeId o1 = b.AddLiteral("1");
  NodeId o2 = b.AddLiteral("2");
  b.AddTriple(s, q, o2);
  b.AddTriple(s, p, o1);
  b.AddTriple(s, p, o2);
  auto g = std::move(b.Build(true)).value();
  auto out = g.Out(s);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_TRUE(out[0] < out[1] && out[1] < out[2]);
  EXPECT_EQ(g.OutDegree(s), 3u);
  EXPECT_EQ(g.OutDegree(o1), 0u);
}

TEST(TripleGraphTest, FindByLabel) {
  GraphBuilder b;
  b.AddLiteralTriple("ex:s", "ex:p", "hello");
  NodeId blank = b.AddBlank("bn");
  NodeId p = b.AddUri("ex:p");
  NodeId lit = b.AddLiteral("hello");
  b.AddTriple(blank, p, lit);
  auto g = std::move(b.Build(true)).value();
  EXPECT_NE(g.FindUri("ex:s"), kInvalidNode);
  EXPECT_EQ(g.FindUri("ex:zzz"), kInvalidNode);
  EXPECT_NE(g.FindLiteral("hello"), kInvalidNode);
  EXPECT_NE(g.FindBlank("bn"), kInvalidNode);
  EXPECT_EQ(g.FindBlank("zz"), kInvalidNode);
}

TEST(TripleGraphTest, NodesOfKindAndCounts) {
  GraphBuilder b;
  b.AddLiteralTriple("ex:s", "ex:p", "v");
  NodeId blank = b.AddBlank();
  NodeId p = b.AddUri("ex:p");
  b.AddTriple(blank, p, b.AddLiteral("w"));
  auto g = std::move(b.Build(true)).value();
  EXPECT_EQ(g.CountOfKind(TermKind::kUri), 2u);
  EXPECT_EQ(g.CountOfKind(TermKind::kLiteral), 2u);
  EXPECT_EQ(g.CountOfKind(TermKind::kBlank), 1u);
  EXPECT_EQ(g.NodesOfKind(TermKind::kBlank).size(), 1u);
}

TEST(TripleGraphInIndexTest, EmptyNeighborhoodAndBasicEdges) {
  GraphBuilder b;
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId o = b.AddUri("ex:o");
  NodeId isolated = b.AddUri("ex:island");
  b.AddTriple(s, p, o);
  auto g = std::move(b.Build(true)).value();
  // A subject-only node and an isolated node have empty in-neighborhoods.
  EXPECT_EQ(g.InDegree(s), 0u);
  EXPECT_TRUE(g.In(s).empty());
  EXPECT_EQ(g.InDegree(isolated), 0u);
  EXPECT_TRUE(g.In(isolated).empty());
  // Predicate and object both see the subject.
  ASSERT_EQ(g.InDegree(p), 1u);
  EXPECT_EQ(g.In(p)[0], s);
  ASSERT_EQ(g.InDegree(o), 1u);
  EXPECT_EQ(g.In(o)[0], s);
}

TEST(TripleGraphInIndexTest, DeduplicatesAcrossRolesAndPredicates) {
  GraphBuilder b;
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId q = b.AddUri("ex:q");
  NodeId o = b.AddUri("ex:o");
  // s reaches o through two predicates: one in-index entry.
  b.AddTriple(s, p, o);
  b.AddTriple(s, q, o);
  // s also uses p both as predicate (above) and as object.
  b.AddTriple(s, q, p);
  auto g = std::move(b.Build(true)).value();
  ASSERT_EQ(g.InDegree(o), 1u);
  EXPECT_EQ(g.In(o)[0], s);
  ASSERT_EQ(g.InDegree(p), 1u);
  EXPECT_EQ(g.In(p)[0], s);
}

TEST(TripleGraphInIndexTest, HighFanoutNodeListsAllSubjectsSorted) {
  // A hub referenced by many subjects through one predicate: the in-index
  // must list every subject exactly once, ascending.
  GraphBuilder b;
  NodeId hub = b.AddUri("ex:hub");
  NodeId p = b.AddUri("ex:p");
  constexpr int kFanout = 500;
  std::vector<NodeId> subjects;
  for (int i = 0; i < kFanout; ++i) {
    NodeId s = b.AddUri("ex:s" + std::to_string(i));
    b.AddTriple(s, p, hub);
    b.AddTriple(s, p, s);  // self-loop: s is its own in-neighbor
    subjects.push_back(s);
  }
  auto g = std::move(b.Build(true)).value();
  ASSERT_EQ(g.InDegree(hub), static_cast<size_t>(kFanout));
  auto in = g.In(hub);
  EXPECT_TRUE(std::is_sorted(in.begin(), in.end()));
  std::sort(subjects.begin(), subjects.end());
  EXPECT_TRUE(std::equal(in.begin(), in.end(), subjects.begin()));
  // The predicate sees all subjects too (fanout distinct subjects).
  EXPECT_EQ(g.InDegree(p), static_cast<size_t>(kFanout));
  // Self-loop: each subject occurs in its own in-neighborhood exactly once.
  for (NodeId s : subjects) {
    ASSERT_EQ(g.InDegree(s), 1u);
    EXPECT_EQ(g.In(s)[0], s);
  }
}

TEST(TripleGraphInIndexTest, ConsistentWithTriples) {
  // Cross-check In() against a reference recomputation from the triples.
  GraphBuilder b;
  for (int i = 0; i < 40; ++i) {
    b.AddUriTriple("ex:s" + std::to_string(i % 7),
                   "ex:p" + std::to_string(i % 3),
                   "ex:o" + std::to_string(i % 11));
  }
  auto g = std::move(b.Build(true)).value();
  std::vector<std::set<NodeId>> expected(g.NumNodes());
  for (const Triple& t : g.triples()) {
    expected[t.p].insert(t.s);
    expected[t.o].insert(t.s);
  }
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    auto in = g.In(n);
    ASSERT_EQ(g.InDegree(n), expected[n].size()) << "node " << n;
    EXPECT_TRUE(std::equal(in.begin(), in.end(), expected[n].begin()))
        << "node " << n;
  }
}

TEST(TripleGraphTest, FromPartsRejectsOutOfRangeIds) {
  auto dict = std::make_shared<Dictionary>();
  std::vector<NodeLabel> labels{{TermKind::kUri, dict->Intern("ex:a")}};
  std::vector<Triple> triples{{0, 0, 5}};
  auto g = TripleGraph::FromParts(dict, labels, triples, false);
  EXPECT_FALSE(g.ok());
}

}  // namespace
}  // namespace rdfalign
