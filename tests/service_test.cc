// End-to-end service coverage: a real Server on an ephemeral port driven
// through the Client — protocol round-trips, CLI-parity of bodies and
// exit codes, persistent connections, concurrent clients sharing the
// cache, endpoint parsing, and graceful Stop() with requests in flight.

#include "service/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <regex>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/graph_source.h"
#include "service/protocol.h"
#include "service/verbs.h"
#include "store/update_fragment.h"

namespace rdfalign::service {
namespace {

std::string ScratchPrefix() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "rdfalign_service_" + info->name();
}

std::string ScrubTimings(const std::string& body) {
  static const std::regex volatile_line(
      "[^\n]*(_ms\"|seconds\"|loaded in |phases \\(ms\\)|parse |"
      "align time )[^\n]*\n");
  return std::regex_replace(body, volatile_line, "");
}

/// gen + build two snapshots in-process (no server involved).
std::pair<std::string, std::string> MakeVersionPair(
    const std::string& prefix) {
  DirectGraphSource direct;
  EXPECT_EQ(ExecuteVerb({"gen", prefix, "--scale=0.02", "--versions=2"},
                        &direct, false)
                .exit_code,
            0);
  const std::string v1 = prefix + "1.snap";
  const std::string v2 = prefix + "2.snap";
  EXPECT_EQ(
      ExecuteVerb({"build", prefix + "1.nt", v1}, &direct, false).exit_code,
      0);
  EXPECT_EQ(
      ExecuteVerb({"build", prefix + "2.nt", v2}, &direct, false).exit_code,
      0);
  return {v1, v2};
}

void RemoveChain(const std::string& prefix) {
  for (const char* suffix : {"1.nt", "2.nt", "1.snap", "2.snap"}) {
    std::remove((prefix + suffix).c_str());
  }
}

class ServiceTest : public ::testing::Test {
 protected:
  void StartServer(size_t workers = 4, uint64_t drain_ms = 30000) {
    ServerOptions options;
    options.port = 0;
    options.worker_threads = workers;
    options.drain_ms = drain_ms;
    server_ = std::make_unique<Server>(options);
    Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_GT(server_->port(), 0);
  }

  Client Connect() {
    Result<Client> client = Client::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  std::unique_ptr<Server> server_;
};

TEST_F(ServiceTest, RoundTripsEveryVerbWithCliParity) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  StartServer();
  Client client = Connect();
  DirectGraphSource direct;

  for (const std::vector<std::string>& tokens :
       {std::vector<std::string>{"info", v1, "--json"},
        {"info", v1},
        {"align", v1, v2, "--method=hybrid", "--json"},
        {"align", v1, v2, "--method=deblank"},
        {"diff", v1, v2, prefix + ".delta", "--json"},
        {"patch", v1, prefix + ".delta", prefix + "_r.snap", "--json"},
        {"info", prefix + ".delta"}}) {
    Result<ClientResponse> resp = client.Call(tokens);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_TRUE(resp->ok);
    EXPECT_EQ(resp->exit_code, 0) << resp->error;
    EXPECT_EQ(resp->verb, tokens[0]);

    // The daemon's body is what the CLI would have printed (modulo
    // timings) — the two front ends share one renderer.
    const VerbResult local = ExecuteVerb(tokens, &direct, false);
    EXPECT_EQ(ScrubTimings(resp->body), ScrubTimings(local.output))
        << tokens[0];
  }

  // The daemon reports its cache working: a second info on the same
  // snapshot is a pure hit.
  Result<ClientResponse> warm = client.Call({"info", v1, "--json"});
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(warm->cache_hits, 1u);
  EXPECT_EQ(warm->cache_misses, 0u);

  RemoveChain(prefix);
  std::remove((prefix + ".delta").c_str());
  std::remove((prefix + "_r.snap").c_str());
}

TEST_F(ServiceTest, ErrorsKeepCliExitCodes) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  const std::string delta = prefix + ".delta";
  StartServer();
  Client client = Connect();
  ASSERT_TRUE(client.Call({"diff", v1, v2, delta}).ok());

  struct Case {
    std::vector<std::string> tokens;
    int want_exit;
    bool want_usage;
  };
  const Case cases[] = {
      {{"frobnicate"}, 2, true},
      {{"align", v1}, 2, true},
      {{"align", v1, v2, "--threads=zomg"}, 2, false},
      {{"align", v1, "/nonexistent"}, 1, false},
      {{"patch", v2, delta, prefix + "_bad.snap"}, 2, false},
      {{"cache", "frob"}, 2, false},
  };
  for (const Case& c : cases) {
    Result<ClientResponse> resp = client.Call(c.tokens);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    EXPECT_FALSE(resp->ok);
    EXPECT_EQ(resp->exit_code, c.want_exit) << c.tokens[0];
    EXPECT_EQ(resp->usage_error, c.want_usage) << c.tokens[0];
    // Non-usage failures always carry a message (bare usage errors show
    // only the synopsis).
    if (!c.want_usage) EXPECT_FALSE(resp->error.empty()) << c.tokens[0];
  }
  // One connection survives any number of failed requests.
  Result<ClientResponse> ok_again = client.Call({"info", v1});
  ASSERT_TRUE(ok_again.ok());
  EXPECT_EQ(ok_again->exit_code, 0);

  RemoveChain(prefix);
  std::remove(delta.c_str());
}

TEST_F(ServiceTest, CacheVerbObservesAndClearsResidency) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  StartServer();
  Client client = Connect();

  ASSERT_TRUE(client.Call({"info", v1, "--json"}).ok());
  ASSERT_TRUE(client.Call({"info", v2, "--json"}).ok());

  Result<ClientResponse> stats = client.Call({"cache", "stats", "--json"});
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->body.find("\"entries\": 2"), std::string::npos)
      << stats->body;

  Result<ClientResponse> clear = client.Call({"cache", "clear"});
  ASSERT_TRUE(clear.ok());
  EXPECT_EQ(clear->exit_code, 0);

  Result<ClientResponse> after = client.Call({"cache", "stats", "--json"});
  ASSERT_TRUE(after.ok());
  EXPECT_NE(after->body.find("\"entries\": 0"), std::string::npos);

  RemoveChain(prefix);
}

TEST_F(ServiceTest, ConcurrentClientsShareTheCache) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  StartServer(4);

  constexpr size_t kClients = 4;
  constexpr int kRequests = 8;
  std::atomic<int> failures{0};
  std::string first_body;
  {
    // Warm the cache and capture the canonical body once.
    Client warm = Connect();
    Result<ClientResponse> resp =
        warm.Call({"align", v1, v2, "--method=hybrid", "--json"});
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    first_body = ScrubTimings(resp->body);
  }

  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Result<Client> client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) {
        failures.fetch_add(kRequests);
        return;
      }
      for (int i = 0; i < kRequests; ++i) {
        Result<ClientResponse> resp =
            client->Call({"align", v1, v2, "--method=hybrid", "--json"});
        if (!resp.ok() || resp->exit_code != 0 ||
            ScrubTimings(resp->body) != first_body) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  // Everything after the warm-up ran from residency: two snapshots, two
  // misses, all other acquires hits.
  const SnapshotCacheStats stats = server_->cache()->stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits, 2u * (kClients * kRequests));

  RemoveChain(prefix);
}

TEST_F(ServiceTest, StopDeliversInFlightResponses) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  StartServer(2);

  // Fire a burst of requests, then Stop() while some are still being
  // served: every request that was written must still get its response.
  constexpr size_t kClients = 3;
  std::atomic<int> completed{0}, broken{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kClients; ++t) {
    threads.emplace_back([&] {
      Result<Client> client = Client::Connect("127.0.0.1", server_->port());
      if (!client.ok()) return;  // stop may already have closed the door
      Result<ClientResponse> resp =
          client->Call({"align", v1, v2, "--method=hybrid"});
      if (resp.ok() && resp->exit_code == 0) {
        completed.fetch_add(1);
      } else {
        broken.fetch_add(1);
      }
    });
  }
  // Let the requests reach the server, then shut down under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  server_->Stop();
  for (std::thread& th : threads) th.join();

  // No half-written responses: a request either completed normally or
  // never got through (connection refused after the listener closed).
  EXPECT_EQ(broken.load(), 0);
  EXPECT_GT(completed.load(), 0);

  // Stop is idempotent and the port is released for a fresh server.
  server_->Stop();
  RemoveChain(prefix);
}

TEST_F(ServiceTest, StatsVerbReportsPerVerbCounters) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  StartServer();
  Client client = Connect();

  ASSERT_TRUE(client.Call({"info", v1, "--json"}).ok());
  ASSERT_TRUE(client.Call({"info", v1, "--json"}).ok());
  Result<ClientResponse> bad = client.Call({"align", v1, "/nonexistent"});
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->exit_code, 1);

  Result<ClientResponse> stats = client.Call({"stats", "--json"});
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->exit_code, 0);
  EXPECT_NE(stats->body.find("\"total_requests\": 3"), std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find("\"total_errors\": 1"), std::string::npos);
  EXPECT_NE(stats->body.find(
                "\"verb\": \"align\", \"requests\": 1, \"errors\": 1"),
            std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find(
                "\"verb\": \"info\", \"requests\": 2, \"errors\": 0"),
            std::string::npos)
      << stats->body;
  EXPECT_NE(stats->body.find("\"p50_ms\""), std::string::npos);

  Result<ClientResponse> text = client.Call({"stats"});
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->body.find("rdfalignd stats:"), std::string::npos);

  Result<ClientResponse> usage = client.Call({"stats", "--frob"});
  ASSERT_TRUE(usage.ok());
  EXPECT_EQ(usage->exit_code, 2);

  // Off-daemon, the verb can only point at the daemon.
  DirectGraphSource direct;
  EXPECT_EQ(ExecuteVerb({"stats"}, &direct, false).exit_code, 1);

  RemoveChain(prefix);
}

/// gen + build a three-version chain plus the two update fragments
/// between consecutive versions.
struct StreamChainFiles {
  std::string v1, v2, v3;
  std::string u1, u2;
};

StreamChainFiles MakeStreamChain(const std::string& prefix) {
  DirectGraphSource direct;
  EXPECT_EQ(ExecuteVerb({"gen", prefix, "--scale=0.02", "--versions=3"},
                        &direct, false)
                .exit_code,
            0);
  StreamChainFiles f;
  f.v1 = prefix + "1.snap";
  f.v2 = prefix + "2.snap";
  f.v3 = prefix + "3.snap";
  for (int i = 1; i <= 3; ++i) {
    const std::string n = std::to_string(i);
    EXPECT_EQ(ExecuteVerb({"build", prefix + n + ".nt", prefix + n + ".snap"},
                          &direct, false)
                  .exit_code,
              0);
  }
  f.u1 = prefix + "_1.upd";
  f.u2 = prefix + "_2.upd";
  EXPECT_EQ(
      ExecuteVerb({"updates", f.v1, f.v2, f.u1, "--seq=1"}, &direct, false)
          .exit_code,
      0);
  EXPECT_EQ(
      ExecuteVerb({"updates", f.v2, f.v3, f.u2, "--seq=2"}, &direct, false)
          .exit_code,
      0);
  return f;
}

void RemoveStreamChain(const std::string& prefix,
                       const StreamChainFiles& f) {
  for (int i = 1; i <= 3; ++i) {
    const std::string n = std::to_string(i);
    std::remove((prefix + n + ".nt").c_str());
    std::remove((prefix + n + ".snap").c_str());
  }
  std::remove(f.u1.c_str());
  std::remove(f.u2.c_str());
}

TEST_F(ServiceTest, StreamSessionMaintainsAlignmentOverDaemon) {
  const std::string prefix = ScratchPrefix();
  const StreamChainFiles f = MakeStreamChain(prefix);
  StartServer();
  Client client = Connect();

  // Pushing without a session is an error, not a crash.
  Result<std::string> frag1 = store::ReadFileBytes(f.u1);
  ASSERT_TRUE(frag1.ok());
  Result<ClientResponse> stray =
      client.CallWithPayload({"stream", "push"}, *frag1);
  ASSERT_TRUE(stray.ok());
  EXPECT_EQ(stray->exit_code, 1);

  Result<ClientResponse> open =
      client.Call({"stream", "open", f.v1, f.v1, "--method=deblank"});
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  ASSERT_EQ(open->exit_code, 0) << open->error;
  EXPECT_NE(open->body.find("stream open"), std::string::npos);

  // Double-open on one connection is rejected; the session survives.
  Result<ClientResponse> reopen =
      client.Call({"stream", "open", f.v1, f.v1});
  ASSERT_TRUE(reopen.ok());
  EXPECT_EQ(reopen->exit_code, 1);

  for (const std::string& path : {f.u1, f.u2}) {
    Result<std::string> bytes = store::ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    Result<ClientResponse> push =
        client.CallWithPayload({"stream", "push", "--json"}, *bytes);
    ASSERT_TRUE(push.ok()) << push.status().ToString();
    ASSERT_EQ(push->exit_code, 0) << push->error;
    EXPECT_NE(push->body.find("\"applied_adds\""), std::string::npos);
    EXPECT_NE(push->body.find("\"added_pairs\""), std::string::npos);
  }

  Result<ClientResponse> check =
      client.Call({"stream", "check", f.v3, "--json"});
  ASSERT_TRUE(check.ok()) << check.status().ToString();
  ASSERT_EQ(check->exit_code, 0) << check->error;
  EXPECT_NE(check->body.find("\"equivalent\": true"), std::string::npos)
      << check->body;

  Result<ClientResponse> stats = client.Call({"stream", "stats"});
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->exit_code, 0);
  EXPECT_NE(stats->body.find("2 fragments"), std::string::npos)
      << stats->body;

  Result<ClientResponse> close = client.Call({"stream", "close"});
  ASSERT_TRUE(close.ok());
  EXPECT_EQ(close->exit_code, 0);

  // After close the connection is back to a clean slate: a fresh open
  // works.
  ASSERT_TRUE(client.Call({"stream", "open", f.v1, f.v1}).ok());

  // A corrupt fragment is rejected at decode time — nothing was applied,
  // so the session stays usable.
  std::string corrupt = *frag1;
  corrupt[corrupt.size() / 2] ^= 0x7f;
  Result<ClientResponse> broken =
      client.CallWithPayload({"stream", "push"}, corrupt);
  ASSERT_TRUE(broken.ok());
  EXPECT_EQ(broken->exit_code, 1);
  Result<ClientResponse> alive = client.Call({"stream", "stats"});
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive->exit_code, 0);

  // A valid fragment applied out of order (u2 against v1 state) fails
  // mid-apply; that is fatal and closes the session.
  Result<std::string> frag2 = store::ReadFileBytes(f.u2);
  ASSERT_TRUE(frag2.ok());
  Result<ClientResponse> fatal =
      client.CallWithPayload({"stream", "push"}, *frag2);
  ASSERT_TRUE(fatal.ok());
  EXPECT_EQ(fatal->exit_code, 1);
  EXPECT_NE(fatal->error.find("session closed"), std::string::npos)
      << fatal->error;
  Result<ClientResponse> after = client.Call({"stream", "stats"});
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->exit_code, 1);  // the session is gone

  RemoveStreamChain(prefix, f);
}

TEST_F(ServiceTest, StopDrainsOpenStreamSessions) {
  const std::string prefix = ScratchPrefix();
  const StreamChainFiles f = MakeStreamChain(prefix);
  StartServer(2);
  Client client = Connect();
  ASSERT_TRUE(client.Call({"stream", "open", f.v1, f.v1}).ok());

  // SIGTERM-style shutdown with the stream session still open: Stop()
  // must wait for the client, who keeps getting served meanwhile.
  std::atomic<bool> stopped{false};
  std::thread stopper([&] {
    server_->Stop();
    stopped.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(stopped.load());  // draining, not dead

  Result<std::string> bytes = store::ReadFileBytes(f.u1);
  ASSERT_TRUE(bytes.ok());
  Result<ClientResponse> push =
      client.CallWithPayload({"stream", "push"}, *bytes);
  ASSERT_TRUE(push.ok()) << push.status().ToString();
  EXPECT_EQ(push->exit_code, 0) << push->error;
  Result<ClientResponse> close = client.Call({"stream", "close"});
  ASSERT_TRUE(close.ok());
  EXPECT_EQ(close->exit_code, 0);

  client.Close();  // the drain completes only when the client hangs up
  stopper.join();
  EXPECT_TRUE(stopped.load());
  RemoveStreamChain(prefix, f);
}

TEST_F(ServiceTest, StopDeadlineForcesIdleConnections) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  StartServer(2, /*drain_ms=*/100);
  Client client = Connect();
  ASSERT_TRUE(client.Call({"info", v1}).ok());

  // The client never hangs up; the drain deadline must cut it loose.
  const auto start = std::chrono::steady_clock::now();
  server_->Stop();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_GE(elapsed.count(), 90);
  EXPECT_LT(elapsed.count(), 5000);
  EXPECT_FALSE(client.Call({"info", v1}).ok());
  RemoveChain(prefix);
}

TEST(ServiceProtocolTest, ParseEndpointForms) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(ParseEndpoint("7464", &host, &port).ok());
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 7464);
  EXPECT_TRUE(ParseEndpoint("10.1.2.3:99", &host, &port).ok());
  EXPECT_EQ(host, "10.1.2.3");
  EXPECT_EQ(port, 99);
  for (const char* bad : {"", "host:", ":", "0", "65536", "x", "1:2:x"}) {
    EXPECT_FALSE(ParseEndpoint(bad, &host, &port).ok()) << bad;
  }
}

TEST(ServiceProtocolTest, RequestTokensRoundTrip) {
  const std::vector<std::string> tokens{"align", "a.snap", "b.snap",
                                        "--json"};
  EXPECT_EQ(DecodeRequest(EncodeRequest(tokens)), tokens);
  EXPECT_TRUE(DecodeRequest(EncodeRequest({})).empty());
}

}  // namespace
}  // namespace rdfalign::service
