#include "util/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rdfalign {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformCoversAllResidues) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRealInHalfOpenUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformReal();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, PickWeightedFavorsHeavyIndex) {
  Rng rng(19);
  std::vector<double> weights{1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.PickWeighted(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleDistinctReturnsDistinctInRange) {
  Rng rng(29);
  auto sample = rng.SampleDistinct(50, 20);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(sample.size(), 20u);
  EXPECT_EQ(unique.size(), 20u);
  for (uint64_t x : sample) EXPECT_LT(x, 50u);
}

TEST(RngTest, SampleDistinctFullRange) {
  Rng rng(31);
  auto sample = rng.SampleDistinct(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

}  // namespace
}  // namespace rdfalign
