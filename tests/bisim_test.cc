#include "core/bisim.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "test_util.h"

namespace rdfalign {
namespace {

TEST(BisimTest, Figure2NodesB2B3AreBisimilar) {
  TripleGraph g = testing::Fig2Graph();
  Partition p = BisimPartition(g);
  NodeId b1 = g.FindBlank("b1");
  NodeId b2 = g.FindBlank("b2");
  NodeId b3 = g.FindBlank("b3");
  EXPECT_EQ(p.ColorOf(b2), p.ColorOf(b3));
  EXPECT_NE(p.ColorOf(b1), p.ColorOf(b2));
  EXPECT_TRUE(AreBisimilar(g, b2, b3));
  EXPECT_FALSE(AreBisimilar(g, b1, b2));
}

TEST(BisimTest, IdentityIsAlwaysABisimulation) {
  TripleGraph g = testing::Fig2Graph();
  std::vector<std::pair<NodeId, NodeId>> identity;
  for (NodeId n = 0; n < g.NumNodes(); ++n) identity.emplace_back(n, n);
  EXPECT_TRUE(IsBisimulation(g, identity));
}

TEST(BisimTest, NonBisimilarPairIsRejectedByChecker) {
  TripleGraph g = testing::Fig2Graph();
  std::vector<std::pair<NodeId, NodeId>> rel;
  for (NodeId n = 0; n < g.NumNodes(); ++n) rel.emplace_back(n, n);
  rel.emplace_back(g.FindBlank("b1"), g.FindBlank("b2"));
  EXPECT_FALSE(IsBisimulation(g, rel));
}

TEST(BisimTest, BruteForceResultIsABisimulationAndEquivalence) {
  TripleGraph g = testing::Fig2Graph();
  auto rel = MaximalBisimulationBruteForce(g);
  EXPECT_TRUE(IsBisimulation(g, rel));
  std::set<std::pair<NodeId, NodeId>> set(rel.begin(), rel.end());
  // Reflexive, symmetric, transitive.
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    EXPECT_TRUE(set.count({n, n}) > 0);
  }
  for (const auto& [a, b] : rel) {
    EXPECT_TRUE(set.count({b, a}) > 0);
    for (const auto& [c, d] : rel) {
      if (b == c) EXPECT_TRUE(set.count({a, d}) > 0);
    }
  }
}

// Proposition 1: the refinement fixpoint equals the maximal bisimulation.
class Proposition1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Proposition1Test, RefinementMatchesBruteForce) {
  testing::RandomGraphOptions options;
  options.seed = GetParam();
  options.uris = 6 + GetParam() % 4;
  options.literals = 4;
  options.blanks = 6 + GetParam() % 4;  // blanks make bisimilarity possible
  options.edges = 18 + GetParam() % 20;
  options.predicates = 2;
  TripleGraph g = testing::RandomGraph(options);

  Partition p = BisimPartition(g);
  std::set<std::pair<NodeId, NodeId>> from_partition;
  for (NodeId a = 0; a < g.NumNodes(); ++a) {
    for (NodeId b = 0; b < g.NumNodes(); ++b) {
      if (p.ColorOf(a) == p.ColorOf(b)) from_partition.emplace(a, b);
    }
  }
  auto brute = MaximalBisimulationBruteForce(g);
  std::set<std::pair<NodeId, NodeId>> from_brute(brute.begin(), brute.end());
  EXPECT_EQ(from_partition, from_brute)
      << "Proposition 1 violated for seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, Proposition1Test,
                         ::testing::Range<uint64_t>(1, 17));

TEST(BisimTest, UnionOfBisimulationsIsABisimulation) {
  TripleGraph g = testing::Fig2Graph();
  NodeId b2 = g.FindBlank("b2");
  NodeId b3 = g.FindBlank("b3");
  std::vector<std::pair<NodeId, NodeId>> r1;
  for (NodeId n = 0; n < g.NumNodes(); ++n) r1.emplace_back(n, n);
  // r2 must relate the predicate and object nodes reachable from b2/b3 as
  // well — Definition 2 matches out-pairs within the relation itself.
  NodeId q = g.FindUri("ex:q");
  NodeId la = g.FindLiteral("a");
  std::vector<std::pair<NodeId, NodeId>> r2 = {
      {b2, b3}, {b3, b2}, {b2, b2}, {b3, b3}, {q, q}, {la, la}};
  ASSERT_TRUE(IsBisimulation(g, r1));
  ASSERT_TRUE(IsBisimulation(g, r2));
  std::vector<std::pair<NodeId, NodeId>> merged = r1;
  merged.insert(merged.end(), r2.begin(), r2.end());
  EXPECT_TRUE(IsBisimulation(g, merged));
}

}  // namespace
}  // namespace rdfalign
