// Verb-layer coverage: ExecuteVerb drives every verb in-process (no
// subprocess, no socket) against both graph sources, pinning
//
//   * the exit-code policy (usage/flag errors -> 2, patch base mismatch
//     -> 2, run failures -> 1),
//   * the exact legacy flag-error messages (the exit-2 contract that
//     cli-smoke greps for),
//   * JSON report fields, and
//   * CLI/daemon parity: the same command renders the same body whether
//     graphs come from DirectGraphSource or a SnapshotCache.

#include "service/verbs.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <regex>
#include <string>
#include <vector>

#include "service/graph_source.h"
#include "service/snapshot_cache.h"

namespace rdfalign::service {
namespace {

std::string ScratchPrefix() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "rdfalign_verbs_" + info->name();
}

VerbResult RunVerb(const std::vector<std::string>& tokens,
               GraphSource* source = nullptr) {
  DirectGraphSource direct;
  return ExecuteVerb(tokens, source ? source : &direct, false);
}

/// Drops the volatile (timing) report lines so two runs compare equal.
std::string ScrubTimings(const std::string& body) {
  static const std::regex volatile_line(
      "[^\n]*(_ms\"|seconds\"|loaded in |phases \\(ms\\)|parse |"
      "align time)[^\n]*\n");
  return std::regex_replace(body, volatile_line, "");
}

/// gen + build two snapshot versions under `prefix`; returns their paths.
std::pair<std::string, std::string> MakeVersionPair(
    const std::string& prefix) {
  VerbResult gen =
      RunVerb({"gen", prefix, "--scale=0.02", "--versions=2", "--seed=9"});
  EXPECT_EQ(gen.exit_code, 0) << gen.error;
  const std::string v1 = prefix + "1.snap";
  const std::string v2 = prefix + "2.snap";
  EXPECT_EQ(RunVerb({"build", prefix + "1.nt", v1}).exit_code, 0);
  EXPECT_EQ(RunVerb({"build", prefix + "2.nt", v2}).exit_code, 0);
  return {v1, v2};
}

void RemoveChain(const std::string& prefix) {
  for (const char* suffix : {"1.nt", "2.nt", "1.snap", "2.snap"}) {
    std::remove((prefix + suffix).c_str());
  }
}

TEST(VerbsTest, FullPipelineThroughExecuteVerb) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  const std::string delta = prefix + ".delta";
  const std::string replayed = prefix + "_replay.snap";
  const std::string archive = prefix + ".archive";

  VerbResult info = RunVerb({"info", v1, "--json"});
  EXPECT_EQ(info.exit_code, 0) << info.error;
  // The legacy snapshot JSON is kind-less; the new fingerprint field
  // rides along after "terms". Builds default to the front-coded
  // version-2 dictionary layout.
  EXPECT_NE(info.output.find("\"version\": 2"), std::string::npos);
  EXPECT_NE(info.output.find("\"fingerprint\": \""), std::string::npos);

  VerbResult align = RunVerb({"align", v1, v2, "--method=hybrid", "--json"});
  EXPECT_EQ(align.exit_code, 0) << align.error;
  EXPECT_NE(align.output.find("\"aligned_edge_ratio\""), std::string::npos);

  VerbResult diff = RunVerb({"diff", v1, v2, delta, "--json"});
  EXPECT_EQ(diff.exit_code, 0) << diff.error;
  EXPECT_NE(diff.output.find("\"kept_triples\""), std::string::npos);
  EXPECT_NE(diff.output.find("\"delta_bytes\""), std::string::npos);

  VerbResult patch = RunVerb({"patch", v1, delta, replayed, "--json"});
  EXPECT_EQ(patch.exit_code, 0) << patch.error;

  // The replayed snapshot aligns 1:1 with the directly built v2.
  VerbResult check = RunVerb({"align", v2, replayed, "--method=trivial",
                          "--json"});
  EXPECT_EQ(check.exit_code, 0) << check.error;
  EXPECT_NE(check.output.find("\"aligned_edge_ratio\": 1.000000"),
            std::string::npos);

  VerbResult arch =
      RunVerb({"archive", archive, prefix + "1.nt", prefix + "2.nt", "--json"});
  EXPECT_EQ(arch.exit_code, 0) << arch.error;
  EXPECT_NE(arch.output.find("\"versions\": 2"), std::string::npos);
  EXPECT_NE(arch.output.find("\"compression_ratio\""), std::string::npos);

  VerbResult arch_info = RunVerb({"info", archive, "--json"});
  EXPECT_EQ(arch_info.exit_code, 0) << arch_info.error;
  EXPECT_NE(arch_info.output.find("\"kind\": \"archive\""),
            std::string::npos);
  EXPECT_NE(arch_info.output.find("\"base_fingerprint\": \""),
            std::string::npos);

  // The delta, snapshot, and archive all agree on the base fingerprint.
  VerbResult delta_info = RunVerb({"info", delta, "--json"});
  EXPECT_EQ(delta_info.exit_code, 0);
  const std::regex fp_re("\"(base_)?fingerprint\": \"([0-9a-f]{16})\"");
  std::smatch m_snap, m_delta, m_arch;
  ASSERT_TRUE(std::regex_search(info.output, m_snap, fp_re));
  ASSERT_TRUE(std::regex_search(delta_info.output, m_delta, fp_re));
  ASSERT_TRUE(std::regex_search(arch_info.output, m_arch, fp_re));
  EXPECT_EQ(m_snap[2], m_delta[2]);
  EXPECT_EQ(m_snap[2], m_arch[2]);

  RemoveChain(prefix);
  for (const std::string& p : {delta, replayed, archive}) {
    std::remove(p.c_str());
  }
}

// The --no-dict-compress escape hatch reaches the writer through every
// writing verb: a raw-mode build reports the version-1 layout while the
// default build reports version 2, and both load to the same graph.
TEST(VerbsTest, NoDictCompressBuildsVersion1Snapshots) {
  const std::string prefix = ScratchPrefix();
  VerbResult gen = RunVerb({"gen", prefix, "--scale=0.02", "--seed=3",
                            "--versions=1"});
  ASSERT_EQ(gen.exit_code, 0) << gen.error;
  const std::string raw = prefix + "_raw.snap";
  ASSERT_EQ(
      RunVerb({"build", prefix + "1.nt", raw, "--no-dict-compress"})
          .exit_code,
      0);
  VerbResult info = RunVerb({"info", raw, "--json"});
  ASSERT_EQ(info.exit_code, 0) << info.error;
  EXPECT_NE(info.output.find("\"version\": 1"), std::string::npos);

  const std::string fc = prefix + "_fc.snap";
  ASSERT_EQ(RunVerb({"build", prefix + "1.nt", fc}).exit_code, 0);
  // Bit-for-bit the same graph either way: a trivial alignment of the
  // two loads is perfect.
  VerbResult check = RunVerb({"align", raw, fc, "--method=trivial",
                              "--json"});
  ASSERT_EQ(check.exit_code, 0) << check.error;
  EXPECT_NE(check.output.find("\"aligned_edge_ratio\": 1.000000"),
            std::string::npos);
  for (const std::string& p : {prefix + "1.nt", raw, fc}) {
    std::remove(p.c_str());
  }
}

// Literals carrying JSON-hostile bytes — control characters, quotes,
// backslashes — survive the build -> snapshot -> align pipeline, and the
// JSON bodies the verbs render around them never contain a raw control
// byte (JsonEscape's contract; see tests/json_test.cc for the unit
// cases).
TEST(VerbsTest, ControlCharacterLiteralsSurviveThePipeline) {
  const std::string prefix = ScratchPrefix();
  const std::string nt = prefix + ".nt";
  {
    std::ofstream out(nt);
    out << "<http://example.org/s> <http://example.org/p> "
           "\"ctl\\u0001mid\\u001Fquote\\\"back\\\\slash\\ttab\" .\n"
           "<http://example.org/s> <http://example.org/q> "
           "<http://example.org/o> .\n";
    ASSERT_TRUE(out.good());
  }
  const std::string snap = prefix + ".snap";
  VerbResult build = RunVerb({"build", nt, snap});
  ASSERT_EQ(build.exit_code, 0) << build.error;

  VerbResult info = RunVerb({"info", snap, "--json"});
  ASSERT_EQ(info.exit_code, 0) << info.error;
  VerbResult align = RunVerb({"align", snap, snap, "--method=trivial",
                              "--json"});
  ASSERT_EQ(align.exit_code, 0) << align.error;
  EXPECT_NE(align.output.find("\"aligned_edge_ratio\": 1.000000"),
            std::string::npos);
  for (const std::string& body : {info.output, align.output}) {
    for (char c : body) {
      const auto byte = static_cast<unsigned char>(c);
      EXPECT_TRUE(byte >= 0x20 || c == '\n')
          << "raw control byte " << static_cast<int>(byte)
          << " in a JSON body";
    }
  }
  std::remove(nt.c_str());
  std::remove(snap.c_str());
}

TEST(VerbsTest, ExactFlagErrorMessages) {
  struct Case {
    std::vector<std::string> tokens;
    std::string want_error;
  };
  const Case cases[] = {
      {{"align", "a", "b", "--threads=zomg"},
       "rdfalign: --threads expects an integer, got 'zomg'"},
      // Out-of-long-long-range values must report the same integer
      // message (strtoll's ERANGE path), not clamp or wrap.
      {{"align", "a", "b", "--threads=99999999999999999999"},
       "rdfalign: --threads expects an integer, got "
       "'99999999999999999999'"},
      {{"align", "a", "b", "--threads=9999"},
       "rdfalign align: --threads must be in [0, 4096]"},
      {{"align", "a", "b", "--bogus=1"}, "rdfalign: unknown flag --bogus"},
      {{"align", "a", "b", "--method=wat"},
       "rdfalign align: InvalidArgument: unknown alignment method: wat"},
      {{"build", "a", "b", "--format=xml"},
       "rdfalign: unknown --format=xml"},
      {{"gen", "x", "--versions=0"},
       "rdfalign gen: --versions must be in [1, 1000]"},
      {{"gen", "x", "--scale=0"},
       "rdfalign gen: --scale must be in (0, 1e6]"},
      {{"gen", "x", "--seed=-1"}, "rdfalign gen: --seed must be >= 0"},
  };
  for (const Case& c : cases) {
    const VerbResult result = RunVerb(c.tokens);
    EXPECT_EQ(result.exit_code, 2) << c.want_error;
    EXPECT_EQ(result.error, c.want_error);
  }
}

TEST(VerbsTest, UsageErrorsShowSynopsis) {
  for (const std::vector<std::string>& tokens :
       {std::vector<std::string>{}, {"frobnicate"}, {"align", "only-one"},
        {"build"}, {"diff", "a", "b"}, {"patch", "a"}, {"archive", "out"},
        {"client"}}) {
    const VerbResult result = RunVerb(tokens);
    EXPECT_EQ(result.exit_code, 2);
    EXPECT_TRUE(result.usage_error);
  }
  const VerbResult unknown = RunVerb({"frobnicate"});
  EXPECT_EQ(unknown.error, "rdfalign: unknown command 'frobnicate'");
  EXPECT_NE(std::string(UsageText()).find("usage: rdfalign <command>"),
            std::string::npos);
}

TEST(VerbsTest, RunFailuresExitOneWithPrefixedStatus) {
  const VerbResult missing = RunVerb({"align", "/nonexistent/a", "/b"});
  EXPECT_EQ(missing.exit_code, 1);
  EXPECT_FALSE(missing.usage_error);
  EXPECT_EQ(missing.error.rfind("rdfalign align: ", 0), 0u) << missing.error;

  const VerbResult info = RunVerb({"info", "/nonexistent/x"});
  EXPECT_EQ(info.exit_code, 1);
  EXPECT_EQ(info.error.rfind("rdfalign info: ", 0), 0u);
}

TEST(VerbsTest, WrongBasePatchIsUsageExitTwo) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  const std::string delta = prefix + ".delta";
  ASSERT_EQ(RunVerb({"diff", v1, v2, delta}).exit_code, 0);

  // Patching the wrong base is exit 2 (InvalidArgument), not 1.
  const VerbResult bad =
      RunVerb({"patch", v2, delta, prefix + "_bad.snap"});
  EXPECT_EQ(bad.exit_code, 2);
  EXPECT_NE(bad.error.find("delta does not apply"), std::string::npos);

  RemoveChain(prefix);
  std::remove(delta.c_str());
}

TEST(VerbsTest, ForceJsonOverridesTextRendering) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  DirectGraphSource source;
  const VerbResult forced = ExecuteVerb({"info", v1}, &source, true);
  EXPECT_EQ(forced.exit_code, 0);
  EXPECT_EQ(forced.output.rfind("{\n", 0), 0u) << forced.output;
  RemoveChain(prefix);
}

TEST(VerbsTest, CacheVerbNeedsACacheSource) {
  const VerbResult no_cache = RunVerb({"cache", "stats"});
  EXPECT_EQ(no_cache.exit_code, 1);
  EXPECT_NE(no_cache.error.find("needs rdfalignd"), std::string::npos);

  const VerbResult bad_action = RunVerb({"cache", "frob"});
  EXPECT_EQ(bad_action.exit_code, 2);

  SnapshotCache cache;
  VerbResult stats = ExecuteVerb({"cache", "stats", "--json"}, &cache, false);
  EXPECT_EQ(stats.exit_code, 0) << stats.error;
  EXPECT_NE(stats.output.find("\"entries\": 0"), std::string::npos);
}

TEST(VerbsTest, CachedSourceRendersIdenticalBodies) {
  const std::string prefix = ScratchPrefix();
  const auto [v1, v2] = MakeVersionPair(prefix);
  SnapshotCache cache;
  DirectGraphSource direct;

  for (const std::vector<std::string>& tokens :
       {std::vector<std::string>{"info", v1, "--json"},
        {"align", v1, v2, "--method=hybrid", "--json"},
        {"align", v1, v2, "--method=trivial"},
        {"diff", v1, v2, prefix + "_c.delta", "--json"}}) {
    const VerbResult via_direct = ExecuteVerb(tokens, &direct, false);
    const VerbResult via_cache = ExecuteVerb(tokens, &cache, false);
    ASSERT_EQ(via_direct.exit_code, 0) << via_direct.error;
    ASSERT_EQ(via_cache.exit_code, 0) << via_cache.error;
    EXPECT_EQ(ScrubTimings(via_direct.output),
              ScrubTimings(via_cache.output))
        << tokens[0];
  }
  // The cached runs above hit the same two snapshots repeatedly.
  EXPECT_GT(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().entries, 2u);

  // Repeating a cached align is bit-identical to its own first run
  // modulo timings, and reports the hits in the verb result.
  const std::vector<std::string> again{"align", v1, v2, "--json"};
  const VerbResult first = ExecuteVerb(again, &cache, false);
  const VerbResult second = ExecuteVerb(again, &cache, false);
  EXPECT_EQ(ScrubTimings(first.output), ScrubTimings(second.output));
  EXPECT_EQ(second.cache_hits, 2u);
  EXPECT_EQ(second.cache_misses, 0u);

  RemoveChain(prefix);
  std::remove((prefix + "_c.delta").c_str());
}

TEST(VerbsTest, GenReportsPartialFilesOnFailure) {
  // An unwritable prefix fails on the first version: no files listed.
  const VerbResult bad = RunVerb({"gen", "/nonexistent-dir/x", "--scale=0.01"});
  EXPECT_EQ(bad.exit_code, 1);
  EXPECT_EQ(bad.output.find("wrote"), std::string::npos);
}

}  // namespace
}  // namespace rdfalign::service
