// Delta store tests: randomized patch-replay round trips (bit-identical
// triples, CSR indexes, and dictionary vs direct snapshot loads of every
// version), corruption rejection for every delta section in the style of
// store_test.cc, and archive persistence equivalence across all aligner
// methods.

#include "store/delta.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aligner.h"
#include "gen/category_gen.h"
#include "store/archive_io.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace rdfalign {
namespace {

using store::ApplyDelta;
using store::DeltaApplyOptions;
using store::DeltaApplyStats;
using store::DeltaWriteStats;
using store::LoadSnapshot;
using store::ReadDeltaInfo;
using store::WriteDelta;
using store::WriteSnapshot;

/// Unique path under the test's temp dir.
std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "rdfalign_delta_" + info->name() + "_" +
         name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::vector<char> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

/// The alignment-derived node map the CLI's `diff` uses.
VersionNodeMap AlignMap(const TripleGraph& base, const TripleGraph& next,
                        AlignMethod method = AlignMethod::kHybrid) {
  CombinedGraph cg = testing::Combine(base, next);
  AlignerOptions options;
  options.method = method;
  Aligner aligner(options);
  AlignmentOutcome outcome = aligner.AlignCombined(cg);
  return NodeMapFromPartition(cg, outcome.partition);
}

/// Bit-level equality: same labels (kind + lexical form), and the triple
/// list and both CSR indexes byte-identical — the acceptance invariant of
/// patch replay, shared with the delta_bench gate via GraphsBitDiffer.
::testing::AssertionResult GraphsBitIdentical(const TripleGraph& a,
                                              const TripleGraph& b) {
  if (const char* what = GraphsBitDiffer(a, b)) {
    return ::testing::AssertionFailure() << what << " differ";
  }
  return ::testing::AssertionSuccess();
}

/// Saves every version as a snapshot and as a base + delta chain, replays
/// the chain, and checks each materialized version bit-identical to the
/// original, to a direct snapshot load, and (via re-save) to the snapshot
/// bytes themselves.
void CheckChainRoundTrip(const std::vector<TripleGraph>& chain,
                         const std::string& tag) {
  std::vector<std::string> snap_paths;
  for (size_t v = 0; v < chain.size(); ++v) {
    snap_paths.push_back(TempPath(tag + "_v" + std::to_string(v) + ".snap"));
    ASSERT_TRUE(WriteSnapshot(chain[v], snap_paths[v]).ok()) << tag;
  }
  std::vector<std::string> delta_paths;
  for (size_t v = 1; v < chain.size(); ++v) {
    delta_paths.push_back(TempPath(tag + "_d" + std::to_string(v) +
                                   ".delta"));
    DeltaWriteStats wstats;
    ASSERT_TRUE(WriteDelta(chain[v - 1], chain[v],
                           AlignMap(chain[v - 1], chain[v]),
                           delta_paths[v - 1], &wstats)
                    .ok())
        << tag << " v" << v;
    EXPECT_EQ(wstats.kept_triples + wstats.removed_triples,
              chain[v - 1].NumEdges());
    EXPECT_EQ(wstats.kept_triples + wstats.added_triples,
              chain[v].NumEdges());
  }

  // Replay with one shared dictionary (the chain workflow).
  auto dict = std::make_shared<Dictionary>();
  auto base = LoadSnapshot(snap_paths[0], dict);
  ASSERT_TRUE(base.ok()) << base.status();
  std::vector<TripleGraph> replayed;
  replayed.push_back(std::move(base).value());
  for (size_t v = 1; v < chain.size(); ++v) {
    DeltaApplyStats astats;
    auto next =
        ApplyDelta(replayed.back(), delta_paths[v - 1], dict, {}, &astats);
    ASSERT_TRUE(next.ok()) << tag << " v" << v << ": " << next.status();
    EXPECT_EQ(astats.kept_triples + astats.added_triples,
              chain[v].NumEdges());
    replayed.push_back(std::move(next).value());
  }

  for (size_t v = 0; v < chain.size(); ++v) {
    SCOPED_TRACE(tag + " version " + std::to_string(v));
    // Bit-identical to the original graph.
    EXPECT_TRUE(GraphsBitIdentical(chain[v], replayed[v]));
    // Bit-identical to a direct snapshot load of that version.
    auto loaded = LoadSnapshot(snap_paths[v], nullptr);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_TRUE(GraphsBitIdentical(*loaded, replayed[v]));
    // The replayed graph is a first-class snapshot citizen: its own
    // save -> load round trip is bit-identical, and its fingerprint —
    // canonical in content — matches the snapshot-loaded graph's.
    const std::string resave = TempPath(tag + "_resave.snap");
    ASSERT_TRUE(WriteSnapshot(replayed[v], resave).ok());
    auto reloaded = LoadSnapshot(resave, nullptr);
    ASSERT_TRUE(reloaded.ok()) << reloaded.status();
    EXPECT_TRUE(GraphsBitIdentical(*reloaded, replayed[v]));
    EXPECT_EQ(store::GraphFingerprint(replayed[v]),
              store::GraphFingerprint(*loaded));
    std::remove(resave.c_str());
  }
  for (const std::string& p : snap_paths) std::remove(p.c_str());
  for (const std::string& p : delta_paths) std::remove(p.c_str());
}

// The round-trip property test: randomized evolving chains, saved as base
// + deltas, patch-replayed, and pinned bit-identical to per-version
// snapshots (ISSUE 5 acceptance).
TEST(DeltaStoreTest, RoundTripsRandomChains) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    testing::RandomGraphOptions options;
    options.edges = 60;
    CheckChainRoundTrip(
        testing::RandomEvolvingChain(seed, /*versions=*/4, options),
        "seed" + std::to_string(seed));
  }
}

TEST(DeltaStoreTest, RoundTripsCategoryChain) {
  gen::CategoryChain chain = gen::CategoryChain::Generate(
      gen::CategoryOptions::FromScale(0.02, /*versions=*/3, /*seed=*/7));
  std::vector<TripleGraph> versions;
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    versions.push_back(chain.Version(v));
  }
  CheckChainRoundTrip(versions, "category");
}

// The CLI-shaped lineage: snapshots built independently, each delta
// diffed over a *pairwise* snapshot load (its own dictionary), patches
// chained from the first snapshot with a fresh dictionary per step. The
// base binding is canonical in graph content — not in dictionary history
// — so the output of one patch is a valid base for the next delta.
// (Regression: with dictionary-id-ordered term numbering the second
// patch was rejected as "does not apply".)
TEST(DeltaStoreTest, ChainedPatchAcrossIndependentlyBuiltSnapshots) {
  std::vector<TripleGraph> chain = testing::RandomEvolvingChain(29, 4);
  std::vector<std::string> snap_paths, delta_paths;
  for (size_t v = 0; v < chain.size(); ++v) {
    snap_paths.push_back(TempPath("ind_v" + std::to_string(v) + ".snap"));
    ASSERT_TRUE(WriteSnapshot(chain[v], snap_paths[v]).ok());
  }
  for (size_t v = 1; v < chain.size(); ++v) {
    auto pair_dict = std::make_shared<Dictionary>();
    auto base = LoadSnapshot(snap_paths[v - 1], pair_dict);
    ASSERT_TRUE(base.ok()) << base.status();
    auto next = LoadSnapshot(snap_paths[v], pair_dict);
    ASSERT_TRUE(next.ok()) << next.status();
    delta_paths.push_back(TempPath("ind_d" + std::to_string(v) + ".delta"));
    ASSERT_TRUE(WriteDelta(*base, *next, AlignMap(*base, *next),
                           delta_paths[v - 1])
                    .ok());
  }
  auto current = LoadSnapshot(snap_paths[0], nullptr);
  ASSERT_TRUE(current.ok()) << current.status();
  std::vector<TripleGraph> replayed;
  replayed.push_back(std::move(current).value());
  for (size_t v = 1; v < chain.size(); ++v) {
    auto next = ApplyDelta(replayed.back(), delta_paths[v - 1], nullptr);
    ASSERT_TRUE(next.ok()) << "step " << v << ": " << next.status();
    replayed.push_back(std::move(next).value());
  }
  for (size_t v = 0; v < chain.size(); ++v) {
    SCOPED_TRACE("version " + std::to_string(v));
    auto loaded = LoadSnapshot(snap_paths[v], nullptr);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_TRUE(GraphsBitIdentical(*loaded, replayed[v]));
  }
  for (const std::string& p : snap_paths) std::remove(p.c_str());
  for (const std::string& p : delta_paths) std::remove(p.c_str());
}

// An empty alignment map is legal: the delta degenerates to remove-all +
// add-all and still reconstructs the next version exactly.
TEST(DeltaStoreTest, RoundTripsWithEmptyAlignment) {
  auto [g1, g2] = testing::RandomEvolvingPair(13);
  const std::string path = TempPath("full.delta");
  VersionNodeMap empty;
  empty.next_to_base.assign(g2.NumNodes(), kInvalidNode);
  DeltaWriteStats wstats;
  ASSERT_TRUE(WriteDelta(g1, g2, empty, path, &wstats).ok());
  EXPECT_EQ(wstats.kept_triples, 0u);
  EXPECT_EQ(wstats.removed_triples, g1.NumEdges());
  EXPECT_EQ(wstats.added_triples, g2.NumEdges());
  auto applied = ApplyDelta(g1, path, nullptr);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_TRUE(GraphsBitIdentical(g2, *applied));
  std::remove(path.c_str());
}

// Deltas across identical versions are pure kept-runs. (The graph must
// not contain bisimilar duplicates: the one-pair-per-class node map
// leaves extra same-class members unmapped, which correctly demotes their
// triples to remove+add — Fig2's b2/b3 would do that, Fig1's blanks are
// distinguishable.)
TEST(DeltaStoreTest, IdenticalVersionsProduceEmptyChange) {
  TripleGraph g = testing::Fig1Graphs().first;
  const std::string path = TempPath("id.delta");
  DeltaWriteStats wstats;
  ASSERT_TRUE(WriteDelta(g, g, AlignMap(g, g), path, &wstats).ok());
  EXPECT_EQ(wstats.removed_triples, 0u);
  EXPECT_EQ(wstats.added_triples, 0u);
  EXPECT_EQ(wstats.new_terms, 0u);
  EXPECT_EQ(wstats.kept_triples, g.NumEdges());
  EXPECT_EQ(wstats.kept_runs, 1u);  // one contiguous run
  auto applied = ApplyDelta(g, path, nullptr);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_TRUE(GraphsBitIdentical(g, *applied));
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, WriterRejectsBadAlignment) {
  auto [g1, g2] = testing::RandomEvolvingPair(3);
  const std::string path = TempPath("bad.delta");
  VersionNodeMap wrong_size;
  wrong_size.next_to_base.assign(g2.NumNodes() + 1, kInvalidNode);
  EXPECT_TRUE(
      WriteDelta(g1, g2, wrong_size, path).IsInvalidArgument());
  VersionNodeMap out_of_range;
  out_of_range.next_to_base.assign(g2.NumNodes(), kInvalidNode);
  out_of_range.next_to_base[0] = static_cast<NodeId>(g1.NumNodes());
  EXPECT_TRUE(
      WriteDelta(g1, g2, out_of_range, path).IsInvalidArgument());
  VersionNodeMap not_injective;
  not_injective.next_to_base.assign(g2.NumNodes(), kInvalidNode);
  ASSERT_GE(g2.NumNodes(), 2u);
  not_injective.next_to_base[0] = 0;
  not_injective.next_to_base[1] = 0;
  EXPECT_TRUE(
      WriteDelta(g1, g2, not_injective, path).IsInvalidArgument());
  TripleGraph other = testing::Fig2Graph();  // its own dictionary
  VersionNodeMap empty;
  empty.next_to_base.assign(other.NumNodes(), kInvalidNode);
  EXPECT_TRUE(WriteDelta(g1, other, empty, path).IsInvalidArgument());
}

// The wrong-base binding: count or fingerprint mismatch must come back as
// InvalidArgument (the `rdfalign patch` exit-2 path), never as a crash or
// a silently wrong graph.
TEST(DeltaStoreTest, ApplyToWrongBaseIsInvalidArgument) {
  std::vector<TripleGraph> chain = testing::RandomEvolvingChain(17, 3);
  const std::string path = TempPath("wrongbase.delta");
  ASSERT_TRUE(
      WriteDelta(chain[0], chain[1], AlignMap(chain[0], chain[1]), path)
          .ok());
  // A different version, and a structurally unrelated graph.
  for (const TripleGraph* wrong : {&chain[1], &chain[2]}) {
    auto applied = ApplyDelta(*wrong, path, nullptr);
    ASSERT_FALSE(applied.ok());
    EXPECT_TRUE(applied.status().IsInvalidArgument()) << applied.status();
    EXPECT_NE(applied.status().message().find("does not apply"),
              std::string::npos)
        << applied.status();
  }
  TripleGraph other = testing::Fig2Graph();
  auto applied = ApplyDelta(other, path, nullptr);
  ASSERT_FALSE(applied.ok());
  EXPECT_TRUE(applied.status().IsInvalidArgument()) << applied.status();
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, InfoReportsCountsAndMagicSniffing) {
  auto [g1, g2] = testing::RandomEvolvingPair(5);
  const std::string path = TempPath("info.delta");
  ASSERT_TRUE(WriteDelta(g1, g2, AlignMap(g1, g2), path).ok());
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kDeltaFormatVersionFrontCoded);
  EXPECT_EQ(info->base_nodes, g1.NumNodes());
  EXPECT_EQ(info->base_triples, g1.NumEdges());
  EXPECT_EQ(info->next_nodes, g2.NumNodes());
  EXPECT_EQ(info->next_triples, g2.NumEdges());
  EXPECT_EQ(info->base_fingerprint, store::GraphFingerprint(g1));
  EXPECT_EQ(info->sections.size(), store::kNumDeltaSectionsV2);
  EXPECT_TRUE(store::LooksLikeDelta(path));
  EXPECT_FALSE(store::LooksLikeSnapshot(path));

  const std::string snap = TempPath("info.snap");
  ASSERT_TRUE(WriteSnapshot(g1, snap).ok());
  EXPECT_FALSE(store::LooksLikeDelta(snap));
  // A snapshot is not a delta (and vice versa): InvalidArgument, so the
  // CLI can sniff cleanly.
  EXPECT_TRUE(ReadDeltaInfo(snap).status().IsInvalidArgument());
  EXPECT_TRUE(store::ReadSnapshotInfo(path).status().IsInvalidArgument());
  std::remove(path.c_str());
  std::remove(snap.c_str());
}

// ----------------------------------------------------------------------
// Corruption rejection (store_test.cc::Rejects* style): bit flips,
// truncation, version mismatches, and crafted files with recomputed
// checksums must all be statuses, never UB. The crafted cases run with
// checksums on and off — structural validation alone must reject them.

/// Writes g1 -> g2 with a hybrid alignment and returns the delta bytes.
std::vector<char> MakeDeltaBytes(const TripleGraph& g1, const TripleGraph& g2,
                                 const std::string& path,
                                 DeltaWriteStats* wstats = nullptr) {
  EXPECT_TRUE(WriteDelta(g1, g2, AlignMap(g1, g2), path, wstats).ok());
  return ReadFileBytes(path);
}

/// Patches raw little-endian `value` at `pos`, then recomputes the
/// containing section's checksum and the header checksum so the file
/// models a crafted delta rather than bit rot.
template <typename T>
void PatchWithValidChecksums(std::vector<char>& bytes,
                             const store::DeltaInfo& info, size_t sec_index,
                             uint64_t entry_index, T value) {
  const auto& sec = info.sections[sec_index];
  std::memcpy(bytes.data() + sec.offset + entry_index * sizeof(T), &value,
              sizeof(value));
  const uint64_t sec_checksum =
      store::Checksum64(bytes.data() + sec.offset, sec.size);
  const size_t entry_pos = sizeof(store::DeltaHeader) +
                           sec_index * sizeof(store::SectionEntry) +
                           offsetof(store::SectionEntry, checksum);
  std::memcpy(bytes.data() + entry_pos, &sec_checksum, sizeof(sec_checksum));
  const size_t hc_pos = offsetof(store::DeltaHeader, header_checksum);
  const uint64_t zero = 0;
  std::memcpy(bytes.data() + hc_pos, &zero, sizeof(zero));
  const uint64_t hc = store::Checksum64(
      bytes.data(), sizeof(store::DeltaHeader) +
                        info.sections.size() * sizeof(store::SectionEntry));
  std::memcpy(bytes.data() + hc_pos, &hc, sizeof(hc));
}

/// Applies the crafted bytes on every checksum setting and expects a
/// Corruption status whose message contains `needle`.
void ExpectCraftedCorruption(const TripleGraph& base,
                             const std::vector<char>& crafted,
                             const std::string& path,
                             const std::string& needle) {
  WriteFileBytes(path, crafted);
  for (bool verify : {false, true}) {
    DeltaApplyOptions options;
    options.verify_checksums = verify;
    auto applied = ApplyDelta(base, path, nullptr, options);
    ASSERT_FALSE(applied.ok()) << "verify " << verify << ": " << needle;
    EXPECT_TRUE(applied.status().IsCorruption()) << applied.status();
    EXPECT_NE(applied.status().message().find(needle), std::string::npos)
        << applied.status();
  }
}

TEST(DeltaStoreTest, RejectsNonDelta) {
  const std::string path = TempPath("junk.delta");
  WriteFileBytes(path, {'n', 'o', 't', ' ', 'a', ' ', 'd', 'e', 'l', 't'});
  TripleGraph g = testing::Fig2Graph();
  auto applied = ApplyDelta(g, path, nullptr);
  ASSERT_FALSE(applied.ok());
  EXPECT_TRUE(applied.status().IsCorruption());  // shorter than a header
  std::vector<char> junk(512, 'x');
  WriteFileBytes(path, junk);
  applied = ApplyDelta(g, path, nullptr);
  ASSERT_FALSE(applied.ok());
  EXPECT_TRUE(applied.status().IsInvalidArgument()) << applied.status();
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, RejectsVersionMismatch) {
  auto [g1, g2] = testing::RandomEvolvingPair(7);
  const std::string path = TempPath("version.delta");
  std::vector<char> bytes = MakeDeltaBytes(g1, g2, path);
  bytes[8] = 99;  // version field sits right after the magic
  WriteFileBytes(path, bytes);
  auto applied = ApplyDelta(g1, path, nullptr);
  ASSERT_FALSE(applied.ok());
  EXPECT_TRUE(applied.status().IsNotSupported()) << applied.status();
  EXPECT_NE(applied.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, RejectsTruncation) {
  auto [g1, g2] = testing::RandomEvolvingPair(9);
  const std::string path = TempPath("trunc.delta");
  const std::vector<char> bytes = MakeDeltaBytes(g1, g2, path);
  for (size_t keep : {size_t{4}, size_t{90}, size_t{300},
                      bytes.size() - 1}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<ptrdiff_t>(keep));
    WriteFileBytes(path, cut);
    auto applied = ApplyDelta(g1, path, nullptr);
    ASSERT_FALSE(applied.ok()) << "keep " << keep;
    EXPECT_TRUE(applied.status().IsCorruption()) << applied.status();
  }
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, RejectsBitFlips) {
  auto [g1, g2] = testing::RandomEvolvingPair(11);
  const std::string path = TempPath("flip.delta");
  const std::vector<char> bytes = MakeDeltaBytes(g1, g2, path);
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok());
  const auto meaningful = [&info](size_t pos) {
    if (pos < sizeof(store::DeltaHeader) +
                  info->sections.size() * sizeof(store::SectionEntry)) {
      return true;
    }
    for (const auto& s : info->sections) {
      if (pos >= s.offset && pos < s.offset + s.size) return true;
    }
    return false;
  };
  size_t flips = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    if (!meaningful(pos)) continue;
    ++flips;
    std::vector<char> flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    WriteFileBytes(path, flipped);
    auto applied = ApplyDelta(g1, path, nullptr);
    EXPECT_FALSE(applied.ok()) << "flip at byte " << pos;
  }
  EXPECT_GT(flips, 50u);
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, RejectsOutOfRangeRemapIds) {
  auto [g1, g2] = testing::RandomEvolvingPair(21);
  const std::string path = TempPath("remap.delta");
  std::vector<char> bytes = MakeDeltaBytes(g1, g2, path);
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok());
  // Section index 5 = node_remap. An in-bounds-looking but out-of-range
  // base id (not kInvalidNode, so it is "mapped").
  std::vector<char> crafted = bytes;
  PatchWithValidChecksums<uint32_t>(
      crafted, *info, 5, 0, static_cast<uint32_t>(g1.NumNodes() + 100));
  ExpectCraftedCorruption(g1, crafted, path, "out of range");
  // Two next nodes claiming one base node: not injective.
  crafted = bytes;
  PatchWithValidChecksums<uint32_t>(crafted, *info, 5, 0, 0);
  PatchWithValidChecksums<uint32_t>(crafted, *info, 5, 1, 0);
  ExpectCraftedCorruption(g1, crafted, path, "injective");
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, RejectsNonMonotoneOrOutOfBoundsRuns) {
  auto [g1, g2] = testing::RandomEvolvingPair(23);
  const std::string path = TempPath("runs.delta");
  DeltaWriteStats wstats;
  std::vector<char> bytes = MakeDeltaBytes(g1, g2, path, &wstats);
  ASSERT_GT(wstats.removed_triples, 0u);  // evolving pairs delete triples
  ASSERT_GT(wstats.kept_triples, 0u);
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok());
  // Section 6 = removed_runs, 7 = kept_runs; entries are {start, count}
  // u64 pairs. A start far past the base triple list:
  std::vector<char> crafted = bytes;
  PatchWithValidChecksums<uint64_t>(crafted, *info, 6, 0, uint64_t{1} << 40);
  ExpectCraftedCorruption(g1, crafted, path, "out of bounds");
  // A count overflowing the base triple list:
  crafted = bytes;
  PatchWithValidChecksums<uint64_t>(crafted, *info, 6, 1, uint64_t{1} << 40);
  ExpectCraftedCorruption(g1, crafted, path, "out of bounds");
  // A kept run whose start collides with a removed base triple: the runs
  // no longer partition the base triple list.
  crafted = bytes;
  const uint64_t removed_start = [&bytes, &info] {
    uint64_t v = 0;
    std::memcpy(&v, bytes.data() + info->sections[6].offset, sizeof(v));
    return v;
  }();
  PatchWithValidChecksums<uint64_t>(crafted, *info, 7, 0, removed_start);
  ExpectCraftedCorruption(g1, crafted, path, "");
  // An empty run is malformed.
  crafted = bytes;
  PatchWithValidChecksums<uint64_t>(crafted, *info, 6, 1, 0);
  ExpectCraftedCorruption(g1, crafted, path, "");
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, RejectsOutOfRangeTermSourcesAndAddedTriples) {
  auto [g1, g2] = testing::RandomEvolvingPair(25);
  const std::string path = TempPath("terms.delta");
  DeltaWriteStats wstats;
  std::vector<char> bytes = MakeDeltaBytes(g1, g2, path, &wstats);
  ASSERT_GT(wstats.added_triples, 0u);
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok());
  ASSERT_GT(info->next_terms, 0u);
  // Section 0 = term_sources: a base term reference past base_terms.
  std::vector<char> crafted = bytes;
  PatchWithValidChecksums<uint32_t>(
      crafted, *info, 0, 0,
      static_cast<uint32_t>(info->base_terms + 7));
  ExpectCraftedCorruption(g1, crafted, path, "out of range");
  // Section 8 = added_triples: a subject id past next_nodes.
  crafted = bytes;
  PatchWithValidChecksums<uint32_t>(
      crafted, *info, 8, 0,
      static_cast<uint32_t>(info->next_nodes + 9));
  ExpectCraftedCorruption(g1, crafted, path, "");
  std::remove(path.c_str());
}

// The --no-dict-compress escape hatch: raw-mode deltas carry the
// version-1 layout (no prefix-lens section) and still apply to the same
// next graph, bit-identically.
TEST(DeltaStoreTest, RawModeWritesVersion1) {
  auto [g1, g2] = testing::RandomEvolvingPair(13);
  const std::string path = TempPath("raw.delta");
  store::StoreWriteOptions raw{.compress_dict = false};
  ASSERT_TRUE(
      WriteDelta(g1, g2, AlignMap(g1, g2), path, nullptr, raw).ok());
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kDeltaFormatVersion);
  EXPECT_EQ(info->sections.size(), store::kNumDeltaSections);
  auto applied = ApplyDelta(g1, path, nullptr);
  ASSERT_TRUE(applied.ok()) << applied.status();
  EXPECT_TRUE(GraphsBitIdentical(g2, *applied));
  std::remove(path.c_str());
}

// Crafted front-coded prefix tables (section index 9, v2 only): a restart
// entry with a nonzero prefix and a prefix longer than the previous term
// must both fail structural validation, with or without checksums.
TEST(DeltaStoreTest, RejectsCraftedFrontCodedPrefixTable) {
  auto [g1, g2] = testing::RandomEvolvingPair(27);
  const std::string path = TempPath("prefix.delta");
  DeltaWriteStats wstats;
  std::vector<char> bytes = MakeDeltaBytes(g1, g2, path, &wstats);
  ASSERT_GE(wstats.new_terms, 2u);
  auto info = ReadDeltaInfo(path);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->version, store::kDeltaFormatVersionFrontCoded);
  // Entry 0 is a restart point; its prefix length must be zero.
  std::vector<char> crafted = bytes;
  PatchWithValidChecksums<uint32_t>(crafted, *info, 9, 0, 1);
  ExpectCraftedCorruption(g1, crafted, path, "restart");
  // Entry 1 claims a prefix far longer than any previous term.
  crafted = bytes;
  PatchWithValidChecksums<uint32_t>(crafted, *info, 9, 1, 0x10000);
  ExpectCraftedCorruption(g1, crafted, path, "prefix");
  std::remove(path.c_str());
}

// ----------------------------------------------------------------------
// Archive persistence equivalence (satellite): LoadArchive(SaveArchive(a))
// preserves stats, entities, interval records, and materialized versions
// exactly, across every aligner method VersionArchive supports.

void CheckArchiveRoundTrip(const std::vector<TripleGraph>& chain,
                           AlignMethod method) {
  AlignerOptions options;
  options.method = method;
  VersionArchive archive(options);
  for (const TripleGraph& g : chain) {
    ASSERT_TRUE(archive.Append(g).ok());
  }
  const std::string path = TempPath(
      "arch_" + std::string(AlignMethodToString(method)) + ".archive");
  store::ArchiveSaveStats save_stats;
  ASSERT_TRUE(store::SaveArchive(archive, path, &save_stats).ok());
  EXPECT_GT(save_stats.file_bytes, 0u);

  store::ArchiveLoadStats load_stats;
  auto loaded = store::LoadArchive(path, options, &load_stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(load_stats.versions, chain.size());

  const ArchiveStats a = archive.Stats();
  const ArchiveStats b = loaded->Stats();
  EXPECT_EQ(a.versions, b.versions);
  EXPECT_EQ(a.triple_version_pairs, b.triple_version_pairs);
  EXPECT_EQ(a.interval_records, b.interval_records);
  EXPECT_EQ(a.distinct_triples, b.distinct_triples);
  EXPECT_EQ(a.entities, b.entities);
  EXPECT_EQ(a.CompressionRatio(), b.CompressionRatio());
  EXPECT_EQ(archive.records(), loaded->records());
  for (uint32_t v = 0; v < chain.size(); ++v) {
    SCOPED_TRACE("version " + std::to_string(v));
    EXPECT_TRUE(GraphsBitIdentical(archive.Version(v), loaded->Version(v)));
    for (NodeId n = 0; n < archive.Version(v).NumNodes(); ++n) {
      ASSERT_EQ(archive.EntityOf(v, n), loaded->EntityOf(v, n))
          << "node " << n;
    }
  }
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, ArchiveRoundTripsAcrossMethods) {
  std::vector<TripleGraph> chain = testing::RandomEvolvingChain(31, 3);
  for (AlignMethod method :
       {AlignMethod::kTrivial, AlignMethod::kDeblank, AlignMethod::kHybrid,
        AlignMethod::kHybridContextual, AlignMethod::kOverlap}) {
    SCOPED_TRACE(std::string(AlignMethodToString(method)));
    CheckArchiveRoundTrip(chain, method);
  }
}

TEST(DeltaStoreTest, ArchiveRoundTripsFigureChain) {
  auto [g1, g2] = testing::Fig3Graphs();
  CheckArchiveRoundTrip({g1, g2}, AlignMethod::kHybrid);
}

TEST(DeltaStoreTest, EmptyAndSingleVersionArchives) {
  const std::string path = TempPath("small.archive");
  {
    VersionArchive empty;
    ASSERT_TRUE(store::SaveArchive(empty, path).ok());
    auto loaded = store::LoadArchive(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->NumVersions(), 0u);
  }
  {
    VersionArchive single;
    TripleGraph g = testing::Fig2Graph();
    ASSERT_TRUE(single.Append(g).ok());
    ASSERT_TRUE(store::SaveArchive(single, path).ok());
    auto loaded = store::LoadArchive(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    EXPECT_EQ(loaded->NumVersions(), 1u);
    EXPECT_TRUE(GraphsBitIdentical(single.Version(0), loaded->Version(0)));
  }
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, LoadedArchiveAcceptsFurtherAppends) {
  std::vector<TripleGraph> chain = testing::RandomEvolvingChain(37, 3);
  VersionArchive archive;
  ASSERT_TRUE(archive.Append(chain[0]).ok());
  ASSERT_TRUE(archive.Append(chain[1]).ok());
  const std::string path = TempPath("grow.archive");
  ASSERT_TRUE(store::SaveArchive(archive, path).ok());
  auto loaded = store::LoadArchive(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  // The loaded archive has its own dictionary; appending a graph built on
  // the original chain dictionary is rejected, and appending the loaded
  // archive's own materialization works.
  EXPECT_TRUE(loaded->Append(chain[2]).status().IsInvalidArgument());
  ASSERT_TRUE(loaded->Append(loaded->Version(1)).ok());
  EXPECT_EQ(loaded->NumVersions(), 3u);
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, ArchiveRejectsCorruption) {
  std::vector<TripleGraph> chain = testing::RandomEvolvingChain(41, 3);
  VersionArchive archive;
  for (const TripleGraph& g : chain) {
    ASSERT_TRUE(archive.Append(g).ok());
  }
  const std::string path = TempPath("corrupt.archive");
  ASSERT_TRUE(store::SaveArchive(archive, path).ok());
  const std::vector<char> bytes = ReadFileBytes(path);
  EXPECT_TRUE(store::LooksLikeArchive(path));

  auto info = store::ReadArchiveInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->num_versions, chain.size());
  EXPECT_EQ(info->sections.size(), 2 * chain.size());

  // Version mismatch.
  std::vector<char> crafted = bytes;
  crafted[8] = 99;
  WriteFileBytes(path, crafted);
  EXPECT_TRUE(store::LoadArchive(path).status().IsNotSupported());
  // Truncations.
  for (size_t keep : {size_t{4}, size_t{40}, bytes.size() / 2,
                      bytes.size() - 1}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<ptrdiff_t>(keep));
    WriteFileBytes(path, cut);
    auto loaded = store::LoadArchive(path);
    ASSERT_FALSE(loaded.ok()) << "keep " << keep;
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
  // Bit-flip sweep over header, table, and every section payload.
  const auto meaningful = [&info](size_t pos) {
    if (pos < sizeof(store::ArchiveHeader) +
                  info->sections.size() * sizeof(store::SectionEntry)) {
      return true;
    }
    for (const auto& s : info->sections) {
      if (pos >= s.offset && pos < s.offset + s.size) return true;
    }
    return false;
  };
  size_t flips = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 31) {
    if (!meaningful(pos)) continue;
    ++flips;
    std::vector<char> flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x10);
    WriteFileBytes(path, flipped);
    EXPECT_FALSE(store::LoadArchive(path).ok()) << "flip at byte " << pos;
  }
  EXPECT_GT(flips, 30u);
  // Junk.
  WriteFileBytes(path, std::vector<char>(256, 'z'));
  EXPECT_TRUE(store::LoadArchive(path).status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(DeltaStoreTest, MissingFilesAreIOErrors) {
  TripleGraph g = testing::Fig2Graph();
  EXPECT_TRUE(
      ApplyDelta(g, TempPath("missing.delta"), nullptr).status().IsIOError());
  EXPECT_TRUE(
      store::LoadArchive(TempPath("missing.archive")).status().IsIOError());
  EXPECT_TRUE(ReadDeltaInfo(::testing::TempDir()).status().IsIOError());
}

}  // namespace
}  // namespace rdfalign
