// Bit-identity of every parallel pipeline kernel across thread counts:
// CSR index builds, graph statistics, the disjoint union, alignment stats,
// the alignment-driven delta, the overlap matcher, and delta-chain replay
// must produce byte-identical outputs (and identical counters) for
// threads in {1, 2, 3, 4, 8} and across repeated runs — the same contract
// the refinement suites pin for the worklist engine.
//
// The graphs here are deliberately sized above the kernels' serial-
// fallback thresholds (>= 2^15 edges) so the parallel paths genuinely
// engage; each check asserts that precondition.

#include <algorithm>
#include <cstdint>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/aligner.h"
#include "core/alignment.h"
#include "core/delta.h"
#include "core/hybrid.h"
#include "core/overlap.h"
#include "rdf/merge.h"
#include "rdf/statistics.h"
#include "store/delta.h"
#include "test_util.h"
#include "util/thread_pool.h"

namespace rdfalign {
namespace {

constexpr size_t kParallelFloor = size_t{1} << 15;
const size_t kThreadCounts[] = {2, 3, 4, 8};

/// A random RDF graph big enough to clear every parallel threshold.
TripleGraph BigRandomGraph(uint64_t seed,
                           std::shared_ptr<Dictionary> dict = nullptr) {
  testing::RandomGraphOptions options;
  options.uris = 6000;
  options.literals = 3000;
  options.blanks = 1500;
  options.edges = 45000;
  options.predicates = 40;
  options.seed = seed * 977 + 13;
  TripleGraph g = testing::RandomGraph(options, std::move(dict));
  EXPECT_GE(g.NumEdges(), kParallelFloor);  // parallel paths must engage
  return g;
}

::testing::AssertionResult GraphsBitIdentical(const TripleGraph& a,
                                              const TripleGraph& b) {
  if (const char* what = GraphsBitDiffer(a, b)) {
    return ::testing::AssertionFailure() << what << " differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(ParallelPipelineCsr, BuildCsrArraysBitIdentical) {
  const TripleGraph g = BigRandomGraph(1);
  std::vector<uint64_t> out_offsets_1;
  std::vector<PredicateObject> out_pairs_1;
  std::vector<uint64_t> in_offsets_1;
  std::vector<NodeId> in_subjects_1;
  TripleGraph::BuildCsrArrays(g.triples(), g.NumNodes(), &out_offsets_1,
                              &out_pairs_1, &in_offsets_1, &in_subjects_1,
                              /*threads=*/1);
  for (size_t threads : kThreadCounts) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      std::vector<uint64_t> out_offsets;
      std::vector<PredicateObject> out_pairs;
      std::vector<uint64_t> in_offsets;
      std::vector<NodeId> in_subjects;
      TripleGraph::BuildCsrArrays(g.triples(), g.NumNodes(), &out_offsets,
                                  &out_pairs, &in_offsets, &in_subjects,
                                  threads);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " repeat=" + std::to_string(repeat));
      EXPECT_EQ(out_offsets, out_offsets_1);
      EXPECT_EQ(out_pairs, out_pairs_1);
      EXPECT_EQ(in_offsets, in_offsets_1);
      EXPECT_EQ(in_subjects, in_subjects_1);
    }
  }
}

TEST(ParallelPipelineCsr, FromPartsBitIdentical) {
  const TripleGraph g = BigRandomGraph(2);
  // Rebuild from shuffled parts so the parallel sort also has work to do.
  std::vector<Triple> shuffled(g.triples().begin(), g.triples().end());
  std::mt19937_64 rng(99);
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  auto base = TripleGraph::FromParts(g.dict_ptr(), g.labels(), shuffled,
                                     /*validate_rdf=*/true, /*threads=*/1);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_TRUE(GraphsBitIdentical(*base, g));
  for (size_t threads : kThreadCounts) {
    auto built = TripleGraph::FromParts(g.dict_ptr(), g.labels(), shuffled,
                                        /*validate_rdf=*/true, threads);
    ASSERT_TRUE(built.ok()) << built.status();
    EXPECT_TRUE(GraphsBitIdentical(*built, *base))
        << "threads=" << threads;
  }
}

TEST(ParallelPipelineStats, StatisticsBitIdentical) {
  const TripleGraph g = BigRandomGraph(3);
  const GraphStatistics base = ComputeStatistics(g, /*threads=*/1);
  for (size_t threads : kThreadCounts) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      const GraphStatistics s = ComputeStatistics(g, threads);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " repeat=" + std::to_string(repeat));
      EXPECT_EQ(s.nodes, base.nodes);
      EXPECT_EQ(s.edges, base.edges);
      EXPECT_EQ(s.uris, base.uris);
      EXPECT_EQ(s.literals, base.literals);
      EXPECT_EQ(s.blanks, base.blanks);
      EXPECT_EQ(s.predicate_only_uris, base.predicate_only_uris);
      EXPECT_EQ(s.sinks, base.sinks);
      EXPECT_EQ(s.max_out_degree, base.max_out_degree);
      EXPECT_EQ(s.avg_out_degree, base.avg_out_degree);
    }
  }
}

TEST(ParallelPipelineMerge, CombinedGraphBuildBitIdentical) {
  auto dict = std::make_shared<Dictionary>();
  const TripleGraph g1 = BigRandomGraph(4, dict);
  const TripleGraph g2 = BigRandomGraph(5, dict);
  auto base = CombinedGraph::Build(g1, g2, /*threads=*/1);
  ASSERT_TRUE(base.ok()) << base.status();
  for (size_t threads : kThreadCounts) {
    auto cg = CombinedGraph::Build(g1, g2, threads);
    ASSERT_TRUE(cg.ok()) << cg.status();
    SCOPED_TRACE("threads=" + std::to_string(threads));
    EXPECT_TRUE(GraphsBitIdentical(cg->graph(), base->graph()));
    EXPECT_EQ(cg->n1(), base->n1());
    EXPECT_EQ(cg->n2(), base->n2());
  }
}

TEST(ParallelPipelineAlign, AlignmentStatsAndDeltaBitIdentical) {
  auto dict = std::make_shared<Dictionary>();
  const TripleGraph g1 = BigRandomGraph(6, dict);
  const TripleGraph g2 = BigRandomGraph(7, dict);
  const CombinedGraph cg = testing::Combine(g1, g2);
  ASSERT_GE(cg.graph().NumEdges(), kParallelFloor);
  const Partition p = HybridPartition(cg);

  const std::vector<ClassSides> sides_1 = ComputeClassSides(cg, p, 1);
  const EdgeAlignmentStats edges_1 = ComputeEdgeAlignment(cg, p, 1);
  const NodeAlignmentStats nodes_1 = ComputeNodeAlignment(cg, p, 1);
  const RdfDelta delta_1 = ComputeDelta(cg, p, 1);
  for (size_t threads : kThreadCounts) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " repeat=" + std::to_string(repeat));
      EXPECT_EQ(ComputeClassSides(cg, p, threads), sides_1);

      const EdgeAlignmentStats e = ComputeEdgeAlignment(cg, p, threads);
      EXPECT_EQ(e.total_edges, edges_1.total_edges);
      EXPECT_EQ(e.aligned_edges, edges_1.aligned_edges);

      const NodeAlignmentStats n = ComputeNodeAlignment(cg, p, threads);
      EXPECT_EQ(n.aligned_classes, nodes_1.aligned_classes);
      EXPECT_EQ(n.aligned_source_nodes, nodes_1.aligned_source_nodes);
      EXPECT_EQ(n.aligned_target_nodes, nodes_1.aligned_target_nodes);
      EXPECT_EQ(n.unaligned_source_nodes, nodes_1.unaligned_source_nodes);
      EXPECT_EQ(n.unaligned_target_nodes, nodes_1.unaligned_target_nodes);

      const RdfDelta d = ComputeDelta(cg, p, threads);
      EXPECT_EQ(d.deleted, delta_1.deleted);
      EXPECT_EQ(d.added, delta_1.added);
      EXPECT_EQ(d.unchanged, delta_1.unchanged);
      ASSERT_EQ(d.renamed_uris.size(), delta_1.renamed_uris.size());
      for (size_t i = 0; i < d.renamed_uris.size(); ++i) {
        EXPECT_EQ(d.renamed_uris[i].source, delta_1.renamed_uris[i].source);
        EXPECT_EQ(d.renamed_uris[i].target, delta_1.renamed_uris[i].target);
        EXPECT_EQ(d.renamed_uris[i].source_uri,
                  delta_1.renamed_uris[i].source_uri);
        EXPECT_EQ(d.renamed_uris[i].target_uri,
                  delta_1.renamed_uris[i].target_uri);
      }
    }
  }
}

TEST(ParallelPipelineOverlap, OverlapMatchEdgesAndCountersBitIdentical) {
  // Synthetic characterizing sets large enough to split into several probe
  // chunks (grain 256); sigma is a pure function of the index pair.
  const size_t na = 1200;
  const size_t nb = 1100;
  std::mt19937_64 rng(1234);
  std::vector<NodeId> a_nodes(na);
  std::vector<NodeId> b_nodes(nb);
  for (size_t i = 0; i < na; ++i) a_nodes[i] = static_cast<NodeId>(i);
  for (size_t i = 0; i < nb; ++i) b_nodes[i] = static_cast<NodeId>(na + i);
  auto random_set = [&rng]() {
    std::vector<uint64_t> set(3 + rng() % 8);
    for (uint64_t& v : set) v = rng() % 3000;
    std::sort(set.begin(), set.end());
    set.erase(std::unique(set.begin(), set.end()), set.end());
    return set;
  };
  CharacterizingSets a_char;
  CharacterizingSets b_char;
  for (size_t i = 0; i < na; ++i) a_char.push_back(random_set());
  for (size_t i = 0; i < nb; ++i) b_char.push_back(random_set());
  auto sigma = [](size_t ai, size_t bi) {
    return static_cast<double>((ai * 31 + bi * 17) % 97) / 100.0;
  };

  OverlapMatchStats stats_1;
  const BipartiteMatching base =
      OverlapMatch(a_nodes, b_nodes, a_char, b_char, /*theta=*/0.5, sigma,
                   {}, &stats_1, /*threads=*/1);
  EXPECT_GT(stats_1.candidates_probed, 0u);
  for (size_t threads : kThreadCounts) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      OverlapMatchStats stats;
      const BipartiteMatching h =
          OverlapMatch(a_nodes, b_nodes, a_char, b_char, /*theta=*/0.5,
                       sigma, {}, &stats, threads);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " repeat=" + std::to_string(repeat));
      EXPECT_EQ(stats.candidates_probed, stats_1.candidates_probed);
      EXPECT_EQ(stats.overlap_checked, stats_1.overlap_checked);
      EXPECT_EQ(stats.sigma_checked, stats_1.sigma_checked);
      EXPECT_EQ(stats.matched, stats_1.matched);
      ASSERT_EQ(h.edges.size(), base.edges.size());
      for (size_t i = 0; i < h.edges.size(); ++i) {
        EXPECT_EQ(h.edges[i].a, base.edges[i].a);
        EXPECT_EQ(h.edges[i].b, base.edges[i].b);
        EXPECT_EQ(h.edges[i].distance, base.edges[i].distance);
      }
    }
  }
}

TEST(ParallelPipelineReplay, DeltaChainReplayBitIdentical) {
  // A version chain whose deltas are written once (serially) and then
  // replayed with every thread count: each materialized version must be
  // bit-identical to the threads=1 replay.
  testing::RandomGraphOptions base_options;
  base_options.uris = 6000;
  base_options.literals = 3000;
  base_options.blanks = 1500;
  base_options.edges = 45000;
  base_options.predicates = 40;
  base_options.seed = 4242;
  const std::vector<TripleGraph> chain =
      testing::RandomEvolvingChain(4242, /*versions=*/3, base_options);
  ASSERT_GE(chain[0].NumEdges(), kParallelFloor);

  std::vector<std::string> delta_images;
  for (size_t v = 1; v < chain.size(); ++v) {
    CombinedGraph cg = testing::Combine(chain[v - 1], chain[v]);
    AlignerOptions options;
    options.method = AlignMethod::kHybrid;
    Aligner aligner(options);
    AlignmentOutcome outcome = aligner.AlignCombined(cg);
    const VersionNodeMap map = NodeMapFromPartition(cg, outcome.partition);
    std::ostringstream out;
    ASSERT_TRUE(store::WriteDeltaToStream(chain[v - 1], chain[v], map, out,
                                          "chain_v" + std::to_string(v))
                    .ok());
    delta_images.push_back(std::move(out).str());
  }

  auto replay = [&](size_t threads) {
    store::DeltaApplyOptions options;
    options.threads = threads;
    std::vector<TripleGraph> replayed;
    // Replay against the original base: the apply path re-interns new
    // terms into the shared dictionary exactly like the archive loader.
    replayed.push_back(chain[0]);
    for (const std::string& image : delta_images) {
      auto next = store::ApplyDeltaFromMemory(
          replayed.back(),
          reinterpret_cast<const unsigned char*>(image.data()), image.size(),
          chain[0].dict_ptr(), options);
      if (!next.ok()) {
        ADD_FAILURE() << next.status();
        break;
      }
      replayed.push_back(std::move(next).value());
    }
    return replayed;
  };

  const std::vector<TripleGraph> base = replay(1);
  ASSERT_EQ(base.size(), chain.size());
  for (size_t v = 0; v < chain.size(); ++v) {
    EXPECT_TRUE(GraphsBitIdentical(base[v], chain[v])) << "version " << v;
  }
  for (size_t threads : kThreadCounts) {
    const std::vector<TripleGraph> replayed = replay(threads);
    for (size_t v = 0; v < chain.size(); ++v) {
      EXPECT_TRUE(GraphsBitIdentical(replayed[v], base[v]))
          << "threads=" << threads << " version " << v;
    }
  }
}

}  // namespace
}  // namespace rdfalign
