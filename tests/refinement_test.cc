#include "core/refinement.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rdfalign {
namespace {

std::vector<NodeId> AllNodes(const TripleGraph& g) {
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  return all;
}

TEST(RefineStepTest, SplitsByOutNeighborhood) {
  // Figure 4's first iteration: b1, b2, b3 start together; b2/b3 split off
  // from b1 after one step.
  TripleGraph g = testing::Fig2Graph();
  Partition p0 = LabelPartition(g);
  Partition p1 = BisimRefineStep(g, p0, AllNodes(g));
  NodeId b1 = g.FindBlank("b1");
  NodeId b2 = g.FindBlank("b2");
  NodeId b3 = g.FindBlank("b3");
  EXPECT_EQ(p0.ColorOf(b1), p0.ColorOf(b2));
  EXPECT_NE(p1.ColorOf(b1), p1.ColorOf(b2));
  EXPECT_EQ(p1.ColorOf(b2), p1.ColorOf(b3));
  EXPECT_TRUE(Partition::IsFinerOrEqual(p1, p0));
}

TEST(RefineStepTest, RecoloredAndKeptNodesNeverMerge) {
  TripleGraph g = testing::Fig2Graph();
  Partition p0 = LabelPartition(g);
  // Refine only b1; b2/b3 keep the shared blank color, b1 must leave it.
  Partition p1 = BisimRefineStep(g, p0, {g.FindBlank("b1")});
  EXPECT_NE(p1.ColorOf(g.FindBlank("b1")), p1.ColorOf(g.FindBlank("b2")));
  EXPECT_EQ(p1.ColorOf(g.FindBlank("b2")), p1.ColorOf(g.FindBlank("b3")));
}

TEST(RefineStepTest, EmptySubsetIsEquivalentIdentity) {
  TripleGraph g = testing::Fig2Graph();
  Partition p0 = LabelPartition(g);
  Partition p1 = BisimRefineStep(g, p0, {});
  EXPECT_TRUE(Partition::Equivalent(p0, p1));
}

TEST(RefineStepTest, SinkNodesKeepStableIdentity) {
  // A node with no outgoing edges keeps essentially the same color through
  // all iterations (Example 2's remark).
  TripleGraph g = testing::Fig2Graph();
  Partition p = LabelPartition(g);
  NodeId lit_a = g.FindLiteral("a");
  NodeId lit_b = g.FindLiteral("b");
  for (int i = 0; i < 3; ++i) {
    Partition next = BisimRefineStep(g, p, AllNodes(g));
    // Both literals remain singletons and distinct.
    EXPECT_NE(next.ColorOf(lit_a), next.ColorOf(lit_b));
    p = std::move(next);
  }
}

TEST(RefineFixpointTest, StabilizesAndReportsStats) {
  TripleGraph g = testing::Fig2Graph();
  RefinementStats stats;
  Partition fix = BisimRefineFixpoint(g, LabelPartition(g), AllNodes(g),
                                      &stats);
  EXPECT_GT(stats.iterations, 0u);
  EXPECT_EQ(stats.final_classes, fix.NumColors());
  EXPECT_GE(stats.final_classes, stats.initial_classes);
  // Applying one more step changes nothing.
  Partition again = BisimRefineStep(g, fix, AllNodes(g));
  EXPECT_TRUE(Partition::Equivalent(fix, again));
}

TEST(RefineFixpointTest, Example2FixpointReachedAfterOneSplit) {
  // In Example 2 λ2 ≡ λ1: the process stabilizes after the first split.
  TripleGraph g = testing::Fig2Graph();
  Partition p1 = BisimRefineStep(g, LabelPartition(g), AllNodes(g));
  Partition p2 = BisimRefineStep(g, p1, AllNodes(g));
  EXPECT_TRUE(Partition::Equivalent(p1, p2));
}

TEST(RefineFixpointTest, HandlesCyclesWithoutDivergence) {
  // Two 3-cycles of blanks with identical labels must stay merged; a cycle
  // with one literal attached must split off.
  GraphBuilder b;
  NodeId p = b.AddUri("ex:p");
  NodeId q = b.AddUri("ex:q");
  NodeId c1[3] = {b.AddBlank("x0"), b.AddBlank("x1"), b.AddBlank("x2")};
  NodeId c2[3] = {b.AddBlank("y0"), b.AddBlank("y1"), b.AddBlank("y2")};
  for (int i = 0; i < 3; ++i) {
    b.AddTriple(c1[i], p, c1[(i + 1) % 3]);
    b.AddTriple(c2[i], p, c2[(i + 1) % 3]);
  }
  NodeId marked = b.AddBlank("m0");
  NodeId m1 = b.AddBlank("m1");
  b.AddTriple(marked, p, m1);
  b.AddTriple(m1, p, marked);
  b.AddTriple(m1, q, b.AddLiteral("tag"));
  auto g = std::move(b.Build(true)).value();
  RefinementStats stats;
  Partition fix =
      BisimRefineFixpoint(g, LabelPartition(g), AllNodes(g), &stats);
  EXPECT_EQ(fix.ColorOf(g.FindBlank("x0")), fix.ColorOf(g.FindBlank("y0")));
  EXPECT_EQ(fix.ColorOf(g.FindBlank("x0")), fix.ColorOf(g.FindBlank("x1")));
  EXPECT_NE(fix.ColorOf(g.FindBlank("x0")), fix.ColorOf(g.FindBlank("m0")));
  EXPECT_NE(fix.ColorOf(g.FindBlank("m0")), fix.ColorOf(g.FindBlank("m1")));
  EXPECT_LE(stats.iterations, g.NumNodes() + 2);
}

TEST(BlankColorsTest, ResetsSubsetToOneSharedColor) {
  TripleGraph g = testing::Fig2Graph();
  Partition p = TrivialPartition(g);
  NodeId u = g.FindUri("ex:u");
  NodeId w = g.FindUri("ex:w");
  Partition blanked = BlankColors(p, {u, w});
  EXPECT_EQ(blanked.ColorOf(u), blanked.ColorOf(w));
  // Everyone else keeps their grouping.
  EXPECT_NE(blanked.ColorOf(g.FindLiteral("a")),
            blanked.ColorOf(g.FindLiteral("b")));
  // The blank color is fresh: no unrelated node shares it.
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (n != u && n != w) {
      EXPECT_NE(blanked.ColorOf(n), blanked.ColorOf(u));
    }
  }
}

// Property sweep: refinement is monotone (each step finer) and the fixpoint
// is idempotent, over a family of random graphs.
class RefinementPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RefinementPropertyTest, MonotoneAndIdempotent) {
  testing::RandomGraphOptions options;
  options.seed = GetParam();
  options.uris = 10 + GetParam() % 7;
  options.blanks = 5 + GetParam() % 5;
  options.edges = 30 + GetParam() % 40;
  TripleGraph g = testing::RandomGraph(options);
  std::vector<NodeId> all = AllNodes(g);

  Partition current = LabelPartition(g);
  for (int i = 0; i < 20; ++i) {
    Partition next = BisimRefineStep(g, current, all);
    ASSERT_TRUE(Partition::IsFinerOrEqual(next, current));
    if (Partition::Equivalent(next, current)) break;
    current = std::move(next);
  }
  Partition fix = BisimRefineFixpoint(g, LabelPartition(g), all);
  EXPECT_TRUE(Partition::Equivalent(fix, current));
  EXPECT_TRUE(Partition::Equivalent(BisimRefineStep(g, fix, all), fix));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefinementPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace rdfalign
