#include "relational/direct_mapping.h"

#include <gtest/gtest.h>

#include "relational/database.h"

namespace rdfalign::relational {
namespace {

Database MakeDb() {
  Database db;
  TableSchema person{
      .name = "person",
      .columns = {{"person_id", ColumnType::kInteger, false},
                  {"name", ColumnType::kText, false},
                  {"nickname", ColumnType::kText, true}},
      .primary_key = 0,
      .foreign_keys = {}};
  TableSchema job{
      .name = "job",
      .columns = {{"job_id", ColumnType::kInteger, false},
                  {"person_id", ColumnType::kInteger, false},
                  {"title", ColumnType::kText, false}},
      .primary_key = 0,
      .foreign_keys = {{1, "person"}}};
  EXPECT_TRUE(db.CreateTable(person).ok());
  EXPECT_TRUE(db.CreateTable(job).ok());
  EXPECT_TRUE(db.Insert("person",
                        {int64_t{7}, std::string("Ada"), Null{}}).ok());
  EXPECT_TRUE(db.Insert("job", {int64_t{1}, int64_t{7},
                                std::string("Engineer")}).ok());
  return db;
}

TEST(DirectMappingTest, UriConstructionRules) {
  DirectMappingOptions opt;
  opt.base_uri = "http://db.example/v1/";
  Database db = MakeDb();
  const TableSchema& person = db.GetTable("person")->schema();
  EXPECT_EQ(RowUri(opt, person, 7),
            "http://db.example/v1/person/person_id=7");
  EXPECT_EQ(ColumnPredicateUri(opt, person, 1),
            "http://db.example/v1/person#name");
  const TableSchema& job = db.GetTable("job")->schema();
  EXPECT_EQ(RefPredicateUri(opt, job, 1),
            "http://db.example/v1/job#ref-person_id");
  EXPECT_EQ(TableTypeUri(opt, person), "http://db.example/v1/person");
}

TEST(DirectMappingTest, ExportShape) {
  DirectMappingOptions opt;
  opt.base_uri = "http://db.example/v1/";
  Database db = MakeDb();
  auto g = ExportDirectMapping(db, opt, nullptr);
  ASSERT_TRUE(g.ok()) << g.status();
  // Row URIs exist.
  NodeId ada = g->FindUri("http://db.example/v1/person/person_id=7");
  NodeId job = g->FindUri("http://db.example/v1/job/job_id=1");
  ASSERT_NE(ada, kInvalidNode);
  ASSERT_NE(job, kInvalidNode);
  // Value attribute -> literal edge.
  EXPECT_NE(g->FindLiteral("Ada"), kInvalidNode);
  EXPECT_NE(g->FindLiteral("Engineer"), kInvalidNode);
  // NULL nickname is skipped.
  EXPECT_EQ(g->FindUri("http://db.example/v1/person#nickname"),
            kInvalidNode);
  // Referential attribute points at the referenced row URI.
  bool fk_edge = false;
  NodeId ref_pred = g->FindUri("http://db.example/v1/job#ref-person_id");
  ASSERT_NE(ref_pred, kInvalidNode);
  for (const auto& po : g->Out(job)) {
    if (po.p == ref_pred && po.o == ada) fk_edge = true;
  }
  EXPECT_TRUE(fk_edge);
  // Type triples present: person row typed with the table class.
  NodeId type_pred =
      g->FindUri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type");
  NodeId person_class = g->FindUri("http://db.example/v1/person");
  ASSERT_NE(type_pred, kInvalidNode);
  ASSERT_NE(person_class, kInvalidNode);
  bool typed = false;
  for (const auto& po : g->Out(ada)) {
    if (po.p == type_pred && po.o == person_class) typed = true;
  }
  EXPECT_TRUE(typed);
  // No blank nodes in a direct-mapped graph.
  EXPECT_EQ(g->CountOfKind(TermKind::kBlank), 0u);
}

TEST(DirectMappingTest, TypeTriplesCanBeDisabled) {
  DirectMappingOptions opt;
  opt.base_uri = "http://db.example/v1/";
  opt.emit_type_triples = false;
  auto g = ExportDirectMapping(MakeDb(), opt, nullptr);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->FindUri("http://www.w3.org/1999/02/22-rdf-syntax-ns#type"),
            kInvalidNode);
}

TEST(DirectMappingTest, DistinctPrefixesShareNoRowUris) {
  auto dict = std::make_shared<rdfalign::Dictionary>();
  Database db = MakeDb();
  DirectMappingOptions v1;
  v1.base_uri = "http://db.example/v1/";
  DirectMappingOptions v2;
  v2.base_uri = "http://db.example/v2/";
  auto g1 = ExportDirectMapping(db, v1, dict);
  auto g2 = ExportDirectMapping(db, v2, dict);
  ASSERT_TRUE(g1.ok() && g2.ok());
  // The only shared URI is rdf:type; every value literal is shared.
  size_t shared_uris = 0;
  for (NodeId n = 0; n < g1->NumNodes(); ++n) {
    if (g1->IsUri(n) && g2->FindUri(g1->Lexical(n)) != kInvalidNode) {
      ++shared_uris;
    }
  }
  EXPECT_EQ(shared_uris, 1u);  // rdf:type
}

TEST(DirectMappingTest, DeterministicExport) {
  Database db = MakeDb();
  DirectMappingOptions opt;
  auto g1 = ExportDirectMapping(db, opt, nullptr);
  auto g2 = ExportDirectMapping(db, opt, nullptr);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->NumNodes(), g2->NumNodes());
  EXPECT_EQ(g1->NumEdges(), g2->NumEdges());
}

}  // namespace
}  // namespace rdfalign::relational
