#include "rdf/merge.h"

#include <gtest/gtest.h>

#include "rdf/statistics.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(MergeTest, DisjointUnionPreservesCountsAndProvenance) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  EXPECT_EQ(cg.graph().NumNodes(), g1.NumNodes() + g2.NumNodes());
  EXPECT_EQ(cg.graph().NumEdges(), g1.NumEdges() + g2.NumEdges());
  EXPECT_EQ(cg.n1(), g1.NumNodes());
  EXPECT_EQ(cg.n2(), g2.NumNodes());
  EXPECT_EQ(cg.e1(), g1.NumEdges());
  EXPECT_EQ(cg.e2(), g2.NumEdges());
  for (NodeId n = 0; n < cg.n1(); ++n) EXPECT_TRUE(cg.InSource(n));
  for (NodeId n = cg.n1(); n < cg.n1() + cg.n2(); ++n) {
    EXPECT_TRUE(cg.InTarget(n));
  }
}

TEST(MergeTest, IdMappingsRoundTrip) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  for (NodeId n = 0; n < g2.NumNodes(); ++n) {
    NodeId combined = cg.FromTarget(n);
    EXPECT_TRUE(cg.InTarget(combined));
    EXPECT_EQ(cg.ToLocal(combined), n);
  }
  for (NodeId n = 0; n < g1.NumNodes(); ++n) {
    EXPECT_EQ(cg.ToLocal(cg.FromSource(n)), n);
  }
}

TEST(MergeTest, LabelsAndEdgesSurviveUnchanged) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  for (NodeId n = 0; n < g1.NumNodes(); ++n) {
    EXPECT_EQ(cg.graph().KindOf(n), g1.KindOf(n));
    EXPECT_EQ(cg.graph().Lexical(n), g1.Lexical(n));
  }
  for (NodeId n = 0; n < g2.NumNodes(); ++n) {
    EXPECT_EQ(cg.graph().KindOf(cg.FromTarget(n)), g2.KindOf(n));
    EXPECT_EQ(cg.graph().Lexical(cg.FromTarget(n)), g2.Lexical(n));
  }
  // The shared URI "ex:w" now labels two distinct nodes (one per side):
  // the combined graph is a triple graph, not an RDF graph.
  size_t w_nodes = 0;
  for (NodeId n = 0; n < cg.graph().NumNodes(); ++n) {
    if (cg.graph().IsUri(n) && cg.graph().Lexical(n) == "ex:w") ++w_nodes;
  }
  EXPECT_EQ(w_nodes, 2u);
}

TEST(MergeTest, RequiresSharedDictionary) {
  GraphBuilder b1;  // fresh dictionary
  b1.AddUriTriple("ex:a", "ex:p", "ex:b");
  GraphBuilder b2;  // another fresh dictionary
  b2.AddUriTriple("ex:a", "ex:p", "ex:b");
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = CombinedGraph::Build(g1, g2);
  EXPECT_FALSE(cg.ok());
  EXPECT_TRUE(cg.status().IsInvalidArgument());
}

TEST(StatisticsTest, CountsKindsAndDegrees) {
  auto [g1, g2] = testing::Fig1Graphs();
  GraphStatistics s = ComputeStatistics(g1);
  EXPECT_EQ(s.nodes, g1.NumNodes());
  EXPECT_EQ(s.edges, g1.NumEdges());
  EXPECT_EQ(s.uris + s.literals + s.blanks, s.nodes);
  EXPECT_EQ(s.blanks, 2u);
  EXPECT_GT(s.literals, 0u);
  EXPECT_GT(s.max_out_degree, 0u);
  EXPECT_GT(s.sinks, 0u);  // literals have no out-edges
  EXPECT_NEAR(s.avg_out_degree,
              static_cast<double>(s.edges) / static_cast<double>(s.nodes),
              1e-12);
}

TEST(StatisticsTest, PredicateOnlyUris) {
  // ex:p and ex:q only ever appear in predicate position.
  GraphBuilder b;
  b.AddLiteralTriple("ex:s", "ex:p", "x");
  b.AddUriTriple("ex:s", "ex:q", "ex:o");
  auto g = std::move(b.Build(true)).value();
  GraphStatistics s = ComputeStatistics(g);
  EXPECT_EQ(s.predicate_only_uris, 2u);
}

TEST(StatisticsTest, EmptyGraph) {
  GraphBuilder b;
  auto g = std::move(b.Build(true)).value();
  GraphStatistics s = ComputeStatistics(g);
  EXPECT_EQ(s.nodes, 0u);
  EXPECT_EQ(s.edges, 0u);
  EXPECT_EQ(s.avg_out_degree, 0.0);
}

}  // namespace
}  // namespace rdfalign
