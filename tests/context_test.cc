#include "core/context.h"

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(PredicateOnlyTest, IdentifiesPurePredicates) {
  // ex:p is only a predicate; ex:o appears as object; ex:t is a predicate
  // AND a subject (typed predicates).
  GraphBuilder b;
  NodeId s = b.AddUri("ex:s");
  NodeId p = b.AddUri("ex:p");
  NodeId t = b.AddUri("ex:t");
  NodeId o = b.AddUri("ex:o");
  b.AddTriple(s, p, o);
  b.AddTriple(s, t, o);
  b.AddTriple(t, p, o);
  auto g = std::move(b.Build(true)).value();
  auto preds = PredicateOnlyUris(g);
  ASSERT_EQ(preds.size(), 1u);
  EXPECT_EQ(preds[0], p);
}

TEST(MediationIndexTest, ListsMediatedPairs) {
  GraphBuilder b;
  NodeId s1 = b.AddUri("ex:s1");
  NodeId s2 = b.AddUri("ex:s2");
  NodeId p = b.AddUri("ex:p");
  NodeId q = b.AddUri("ex:q");
  NodeId o = b.AddLiteral("o");
  b.AddTriple(s1, p, o);
  b.AddTriple(s2, p, o);
  b.AddTriple(s1, q, o);
  auto g = std::move(b.Build(true)).value();
  MediationIndex index(g);
  EXPECT_EQ(index.Mediated(p).size(), 2u);
  EXPECT_EQ(index.Mediated(q).size(), 1u);
  EXPECT_EQ(index.Mediated(o).size(), 0u);
  // Pairs carry (subject, object).
  EXPECT_EQ(index.Mediated(q)[0].p, s1);
  EXPECT_EQ(index.Mediated(q)[0].o, o);
}

// The §5.1 error scenario: two unrelated predicate-only URIs per side.
// Plain hybrid merges all four; the contextual variant aligns each with its
// true counterpart.
struct PredicateScenario {
  PredicateScenario() {
    auto dict = std::make_shared<Dictionary>();
    GraphBuilder b1(dict);
    {
      NodeId person = b1.AddUri("ex:alice");
      NodeId city = b1.AddUri("ex:paris");
      b1.AddTriple(person, b1.AddUri("v1:hasAge"), b1.AddLiteral("42"));
      b1.AddTriple(city, b1.AddUri("v1:population"),
                   b1.AddLiteral("2100000"));
    }
    GraphBuilder b2(dict);
    {
      NodeId person = b2.AddUri("ex:alice");
      NodeId city = b2.AddUri("ex:paris");
      b2.AddTriple(person, b2.AddUri("v2:hasAge"), b2.AddLiteral("42"));
      b2.AddTriple(city, b2.AddUri("v2:population"),
                   b2.AddLiteral("2100000"));
    }
    g1 = std::move(b1.Build(true)).value();
    g2 = std::move(b2.Build(true)).value();
    cg = std::make_unique<CombinedGraph>(testing::Combine(g1, g2));
  }
  TripleGraph g1, g2;
  std::unique_ptr<CombinedGraph> cg;
};

TEST(ContextualHybridTest, PlainHybridMergesUnrelatedPredicates) {
  PredicateScenario s;
  Partition hybrid = HybridPartition(*s.cg);
  const TripleGraph& g = s.cg->graph();
  // The documented error: hasAge and population collapse into one class.
  EXPECT_EQ(hybrid.ColorOf(g.FindUri("v1:hasAge")),
            hybrid.ColorOf(g.FindUri("v2:population")));
}

TEST(ContextualHybridTest, MediationSignaturesSplitThem) {
  PredicateScenario s;
  Partition aware = PredicateAwareHybridPartition(*s.cg);
  const TripleGraph& g = s.cg->graph();
  // Correct alignments survive...
  EXPECT_EQ(aware.ColorOf(g.FindUri("v1:hasAge")),
            aware.ColorOf(g.FindUri("v2:hasAge")));
  EXPECT_EQ(aware.ColorOf(g.FindUri("v1:population")),
            aware.ColorOf(g.FindUri("v2:population")));
  // ...while the false merge is gone.
  EXPECT_NE(aware.ColorOf(g.FindUri("v1:hasAge")),
            aware.ColorOf(g.FindUri("v2:population")));
}

TEST(ContextualHybridTest, AgreesWithHybridOnFig3) {
  // On a graph with no predicate-only churn the contextual variant must
  // not disturb the standard result.
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition plain = HybridPartition(cg);
  Partition aware = PredicateAwareHybridPartition(cg);
  const TripleGraph& g = cg.graph();
  EXPECT_EQ(aware.ColorOf(g.FindUri("ex:u")), aware.ColorOf(g.FindUri("ex:v")));
  EXPECT_EQ(aware.ColorOf(g.FindBlank("b1")),
            aware.ColorOf(g.FindBlank("b5")));
  EXPECT_EQ(aware.ColorOf(g.FindBlank("b2")),
            aware.ColorOf(g.FindBlank("b4")));
  (void)plain;
}

class ContextualRefineProperty : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(ContextualRefineProperty, ContextualIsFinerThanPlainHybrid) {
  // The contextual signature strictly extends the plain one, so its
  // greatest fixpoint refines plain hybrid's: every contextual class sits
  // inside one plain class (splits may cascade from predicates to their
  // subjects, which is the point — false merges dissolve, true alignments
  // never span two plain classes).
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  Partition plain = HybridPartition(cg);
  Partition aware = PredicateAwareHybridPartition(cg);
  EXPECT_TRUE(Partition::IsFinerOrEqual(aware, plain))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContextualRefineProperty,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace rdfalign
