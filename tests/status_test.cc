#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace rdfalign {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructorsSetCodeAndMessage) {
  Status s = Status::InvalidArgument("bad theta");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "bad theta");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad theta");
}

TEST(StatusTest, AllCodesRoundTripThroughToString) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

Status Fails() { return Status::IOError("disk"); }
Status Succeeds() { return Status::OK(); }

Status UsesReturnIfError(bool fail) {
  RDFALIGN_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(false).ok());
  EXPECT_TRUE(UsesReturnIfError(true).IsIOError());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

Result<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UsesAssignOrReturn(int x, int* out) {
  RDFALIGN_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_TRUE(UsesAssignOrReturn(7, &out).IsInvalidArgument());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace rdfalign
