// Robustness and cross-cutting property tests: parser failure injection,
// delta conservation laws, archive invariants, and end-to-end migration
// recovery on the EFO chain.

#include <gtest/gtest.h>

#include "core/archive.h"
#include "core/delta.h"
#include "core/hybrid.h"
#include "gen/efo_gen.h"
#include "gen/textgen.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "parser/turtle_parser.h"
#include "test_util.h"
#include "util/random.h"

namespace rdfalign {
namespace {

// --- parser failure injection ------------------------------------------------

/// Corrupts a valid document: truncation, random byte flips, deletions.
std::string Corrupt(const std::string& doc, Rng& rng) {
  std::string out = doc;
  switch (rng.Uniform(4)) {
    case 0:  // truncate
      out.resize(rng.Uniform(out.size() + 1));
      break;
    case 1: {  // flip bytes
      for (int i = 0; i < 5 && !out.empty(); ++i) {
        out[rng.Uniform(out.size())] =
            static_cast<char>(rng.Uniform(256));
      }
      break;
    }
    case 2: {  // delete a span
      if (!out.empty()) {
        size_t start = rng.Uniform(out.size());
        size_t len = rng.Uniform(out.size() - start + 1);
        out.erase(start, len);
      }
      break;
    }
    case 3: {  // duplicate a span at a random position
      if (!out.empty()) {
        size_t start = rng.Uniform(out.size());
        size_t len = std::min<size_t>(rng.Uniform(40), out.size() - start);
        out.insert(rng.Uniform(out.size()), out.substr(start, len));
      }
      break;
    }
  }
  return out;
}

class ParserFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzzTest, NTriplesNeverCrashesOnCorruptInput) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  std::string doc = NTriplesToString(g1);
  Rng rng(GetParam() * 31 + 7);
  for (int round = 0; round < 50; ++round) {
    std::string bad = Corrupt(doc, rng);
    auto result = ParseNTriplesString(bad, nullptr);
    // Must either parse (the corruption kept it valid) or fail cleanly.
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError() ||
                  result.status().IsInvalidArgument())
          << result.status();
    }
  }
}

TEST_P(ParserFuzzTest, TurtleNeverCrashesOnCorruptInput) {
  const std::string doc =
      "@prefix ex: <http://e/> .\n"
      "ex:a ex:p [ ex:q \"v\" ; ex:r 42 ] , \"lit\"@en .\n"
      "ex:b a ex:T ; ex:s ex:a .\n";
  Rng rng(GetParam() * 131 + 3);
  for (int round = 0; round < 50; ++round) {
    std::string bad = Corrupt(doc, rng);
    auto result = ParseTurtleString(bad, nullptr);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError() ||
                  result.status().IsNotSupported() ||
                  result.status().IsInvalidArgument())
          << result.status();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzzTest,
                         ::testing::Range<uint64_t>(1, 6));

// --- delta conservation laws --------------------------------------------------

class DeltaPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeltaPropertyTest, CountsConserveEdges) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  for (auto method : {AlignMethod::kTrivial, AlignMethod::kHybrid}) {
    Partition p = method == AlignMethod::kTrivial
                      ? TrivialPartition(cg.graph())
                      : HybridPartition(cg);
    RdfDelta delta = ComputeDelta(cg, p);
    // Every source edge is either matched or deleted; every target edge is
    // either matched or added.
    EXPECT_EQ(delta.unchanged + delta.deleted.size(), g1.NumEdges())
        << AlignMethodToString(method) << " seed " << GetParam();
    EXPECT_EQ(delta.unchanged + delta.added.size(), g2.NumEdges())
        << AlignMethodToString(method) << " seed " << GetParam();
    // Deleted edges live on the source side, added on the target side.
    for (const Triple& t : delta.deleted) EXPECT_TRUE(cg.InSource(t.s));
    for (const Triple& t : delta.added) EXPECT_TRUE(cg.InTarget(t.s));
  }
}

TEST_P(DeltaPropertyTest, BetterAlignmentsShrinkTheDelta) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  RdfDelta trivial = ComputeDelta(cg, TrivialPartition(cg.graph()));
  RdfDelta hybrid = ComputeDelta(cg, HybridPartition(cg));
  EXPECT_LE(hybrid.added.size(), trivial.added.size()) << GetParam();
  EXPECT_LE(hybrid.deleted.size(), trivial.deleted.size()) << GetParam();
  EXPECT_GE(hybrid.unchanged, trivial.unchanged) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeltaPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// --- archive invariants ---------------------------------------------------------

TEST(ArchiveInvariantTest, IntervalsAreSortedDisjointAndInRange) {
  gen::EfoOptions options;
  options.initial_classes = 50;
  options.versions = 6;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  VersionArchive archive;
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    ASSERT_TRUE(archive.Append(chain.Version(v)).ok());
  }
  for (const auto& [key, intervals] : archive.records()) {
    ASSERT_FALSE(intervals.empty());
    for (size_t i = 0; i < intervals.size(); ++i) {
      EXPECT_LT(intervals[i].from, intervals[i].to);
      EXPECT_LE(intervals[i].to, chain.NumVersions());
      if (i > 0) {
        // Sorted and non-adjacent (adjacent ones would have been merged).
        EXPECT_GT(intervals[i].from, intervals[i - 1].to);
      }
    }
  }
}

TEST(ArchiveInvariantTest, PerVersionTripleMultisetsMatchReconstruction) {
  gen::EfoOptions options;
  options.initial_classes = 40;
  options.versions = 5;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  VersionArchive archive;
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    ASSERT_TRUE(archive.Append(chain.Version(v)).ok());
  }
  for (uint32_t v = 0; v < chain.NumVersions(); ++v) {
    // Reconstruction size equals the entity-level deduplicated edge count.
    const TripleGraph& g = chain.Version(v);
    std::set<std::tuple<EntityId, EntityId, EntityId>> expected;
    for (const Triple& t : g.triples()) {
      expected.emplace(archive.EntityOf(v, t.s), archive.EntityOf(v, t.p),
                       archive.EntityOf(v, t.o));
    }
    EXPECT_EQ(archive.TriplesAt(v).size(), expected.size()) << "v=" << v;
  }
}

// --- end-to-end migration recovery ---------------------------------------------

TEST(MigrationRecoveryTest, HybridAlignsEveryMigratedClassPair) {
  gen::EfoOptions options;
  options.initial_classes = 120;
  options.versions = 10;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  const size_t before = options.big_migration_version;   // 0-based index 7
  const size_t after = before + 1;
  auto cg = testing::Combine(chain.Version(before), chain.Version(after));
  Partition hybrid = HybridPartition(cg);
  gen::GroundTruth gt = chain.ClassGroundTruth(before, after);
  gen::PrecisionStats stats = gen::EvaluatePrecisionCovered(cg, hybrid, gt);
  // Nearly all surviving classes — including every renamed one — align;
  // literal edits may cost a few.
  EXPECT_EQ(stats.evaluated, gt.NumPairs());
  EXPECT_GT(stats.ExactRate(), 0.9)
      << "exact=" << stats.exact << " missing=" << stats.missing;
}

TEST(MigrationRecoveryTest, CoveredPrecisionIgnoresUncoveredNodes) {
  // EvaluatePrecisionCovered must not count axiom blanks/predicates (not in
  // the class GT) as false matches.
  gen::EfoOptions options;
  options.initial_classes = 40;
  options.versions = 2;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  auto cg = testing::Combine(chain.Version(0), chain.Version(1));
  Partition hybrid = HybridPartition(cg);
  gen::GroundTruth gt = chain.ClassGroundTruth(0, 1);
  gen::PrecisionStats covered = gen::EvaluatePrecisionCovered(cg, hybrid, gt);
  EXPECT_EQ(covered.false_matches, 0u);
  EXPECT_EQ(covered.evaluated, gt.NumPairs());
  gen::PrecisionStats full = gen::EvaluatePrecision(cg, hybrid, gt);
  EXPECT_GT(full.evaluated, covered.evaluated);
}

}  // namespace
}  // namespace rdfalign
