// Unit tests of the shared work-stealing pool: the chunk plan is a pure
// function of (n, grain), every chunk runs exactly once for any thread
// count, nested parallel regions degrade to inline execution, and the
// deterministic helpers (ParallelChunks, ChunkedReduce, ParallelSort)
// produce bit-identical results across thread counts and repeated runs.

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace rdfalign {
namespace {

TEST(ThreadPoolTest, ResolveThreadsNeverReturnsZero) {
  EXPECT_GE(ResolveThreads(0), 1u);  // 0 = all hardware threads
  EXPECT_EQ(ResolveThreads(1), 1u);
  EXPECT_EQ(ResolveThreads(5), 5u);
}

TEST(ThreadPoolTest, PlanChunksAndBoundsPartitionTheRange) {
  EXPECT_EQ(PlanChunks(0, 16), 0u);
  for (size_t n : {1u, 5u, 1000u, 100000u}) {
    for (size_t grain : {0u, 1u, 7u, 1024u}) {
      const size_t chunks = PlanChunks(n, grain);
      ASSERT_GE(chunks, 1u);
      ASSERT_LE(chunks, kMaxPlannedChunks);
      EXPECT_EQ(ChunkBound(n, chunks, 0), 0u);
      EXPECT_EQ(ChunkBound(n, chunks, chunks), n);
      for (size_t c = 0; c < chunks; ++c) {
        EXPECT_LE(ChunkBound(n, chunks, c), ChunkBound(n, chunks, c + 1));
      }
    }
  }
}

TEST(ThreadPoolTest, RunExecutesEveryChunkExactlyOnce) {
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    const size_t chunks = 257;  // not a multiple of any thread count
    std::vector<std::atomic<uint32_t>> hits(chunks);
    ThreadPool::Instance().Run(chunks, threads, [&](size_t c) {
      hits[c].fetch_add(1, std::memory_order_relaxed);
    });
    for (size_t c = 0; c < chunks; ++c) {
      EXPECT_EQ(hits[c].load(), 1u) << "chunk " << c << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, WorkersGrowToTheRequestedWidth) {
  // threads=8 must field 8 real lanes even when the host has fewer cores
  // (the equivalence tests rely on genuinely concurrent 8-lane runs).
  ThreadPool::Instance().Run(64, 8, [](size_t) {});
  EXPECT_GE(ThreadPool::Instance().WorkersSpawned(), 7u);
}

TEST(ThreadPoolTest, NestedRunExecutesInline) {
  const size_t outer = 16;
  const size_t inner = 32;
  std::vector<std::atomic<uint32_t>> hits(outer * inner);
  ThreadPool::Instance().Run(outer, 4, [&](size_t o) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // The nested region must not deadlock or double-run: it executes on
    // the calling worker, chunk by chunk.
    ThreadPool::Instance().Run(inner, 4, [&](size_t i) {
      hits[o * inner + i].fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_FALSE(ThreadPool::InParallelRegion());
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1u) << "slot " << i;
  }
}

TEST(ThreadPoolTest, ParallelChunksCoversExactRanges) {
  const size_t n = 100003;
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    std::vector<std::atomic<uint8_t>> seen(n);
    ParallelChunks(n, threads, /*grain=*/1024,
                   [&](size_t, size_t begin, size_t end) {
                     for (size_t i = begin; i < end; ++i) {
                       seen[i].fetch_add(1, std::memory_order_relaxed);
                     }
                   });
    size_t covered = 0;
    for (size_t i = 0; i < n; ++i) covered += seen[i].load();
    EXPECT_EQ(covered, n) << "threads " << threads;
  }
}

TEST(ThreadPoolTest, ChunkedReduceMatchesSerialAccumulate) {
  std::mt19937_64 rng(42);
  std::vector<uint64_t> values(200000);
  for (uint64_t& v : values) v = rng();
  const uint64_t expected =
      std::accumulate(values.begin(), values.end(), uint64_t{0});
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      const uint64_t sum = ChunkedReduce<uint64_t>(
          values.size(), threads, /*grain=*/4096, uint64_t{0},
          [&](size_t, size_t begin, size_t end) {
            return std::accumulate(values.begin() + begin,
                                   values.begin() + end, uint64_t{0});
          },
          [](uint64_t& acc, uint64_t part) { acc += part; });
      EXPECT_EQ(sum, expected) << "threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelSortMatchesStdSort) {
  std::mt19937_64 rng(7);
  std::vector<uint64_t> values(300000);
  for (uint64_t& v : values) v = rng() % 1000;  // heavy duplicates
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  for (size_t threads : {1u, 2u, 3u, 4u, 8u}) {
    for (int repeat = 0; repeat < 2; ++repeat) {
      std::vector<uint64_t> v = values;
      ParallelSort(v, threads);
      EXPECT_EQ(v, expected) << "threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ManySmallRunsReuseThePool) {
  std::atomic<uint64_t> total{0};
  for (int round = 0; round < 200; ++round) {
    ThreadPool::Instance().Run(7, 3, [&](size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 200u * 7u);
}

}  // namespace
}  // namespace rdfalign
