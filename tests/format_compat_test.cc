// Backward-compatibility pins for the version-1 (raw dictionary) store
// formats. The fixtures in tests/data/ were produced by a pre-front-coding
// build of the CLI (`rdfalign build/diff/updates/archive`) and are
// committed verbatim; this suite proves that the current build still
// reads every one of them bit-identically, and that the
// --no-dict-compress escape hatch reproduces the version-1 snapshot
// bytes exactly. If any of these tests start failing, the format
// compatibility promise of docs/store.md is broken.
//
// RDFALIGN_SOURCE_DIR is injected by CMake so the suite can run from any
// build directory.

#include <cstdint>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "parser/ntriples_parser.h"
#include "store/archive_io.h"
#include "store/delta.h"
#include "store/snapshot.h"
#include "store/update_fragment.h"
#include "test_util.h"

namespace rdfalign {
namespace {

// GraphFingerprint of tests/data/fixture_base.nt, as reported by the
// pre-change `rdfalign info --json` that generated the fixtures. Pinned
// as a literal so a silent fingerprint-definition change cannot
// masquerade as compatibility.
constexpr uint64_t kBaseFingerprint = 0x476e94bc2da9aa60ull;

std::string DataPath(const std::string& name) {
  return std::string(RDFALIGN_SOURCE_DIR) + "/tests/data/" + name;
}

std::vector<char> ReadAllBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::vector<char> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "rdfalign_compat_" + info->name() + "_" +
         name;
}

::testing::AssertionResult BitIdentical(const TripleGraph& a,
                                        const TripleGraph& b) {
  if (const char* what = GraphsBitDiffer(a, b)) {
    return ::testing::AssertionFailure() << what << " differ";
  }
  return ::testing::AssertionSuccess();
}

TEST(FormatCompatTest, V1SnapshotsStillLoad) {
  auto info = store::ReadSnapshotInfo(DataPath("fixture_base_v1.snap"));
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kFormatVersion);
  EXPECT_EQ(info->sections.size(), store::kNumSections);

  auto loaded =
      store::LoadSnapshot(DataPath("fixture_base_v1.snap"), nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(store::GraphFingerprint(*loaded), kBaseFingerprint);

  // The snapshot must reproduce the graph the .nt fixture parses to.
  auto parsed = ParseNTriplesFile(DataPath("fixture_base.nt"), nullptr);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_TRUE(BitIdentical(*parsed, *loaded));
  EXPECT_EQ(store::GraphFingerprint(*parsed), kBaseFingerprint);

  auto next = store::LoadSnapshot(DataPath("fixture_next_v1.snap"), nullptr);
  ASSERT_TRUE(next.ok()) << next.status();
  auto next_parsed =
      ParseNTriplesFile(DataPath("fixture_next.nt"), nullptr);
  ASSERT_TRUE(next_parsed.ok()) << next_parsed.status();
  EXPECT_TRUE(BitIdentical(*next_parsed, *next));
}

// --no-dict-compress writes the exact bytes the pre-change build wrote:
// re-encoding the parsed .nt fixture in raw mode must reproduce the
// checked-in v1 snapshot byte for byte.
TEST(FormatCompatTest, RawModeReproducesV1BytesExactly) {
  for (const char* stem : {"base", "next"}) {
    SCOPED_TRACE(stem);
    auto parsed = ParseNTriplesFile(
        DataPath(std::string("fixture_") + stem + ".nt"), nullptr);
    ASSERT_TRUE(parsed.ok()) << parsed.status();
    const std::string out = TempPath(std::string(stem) + ".snap");
    store::StoreWriteOptions raw{.compress_dict = false};
    ASSERT_TRUE(store::WriteSnapshot(*parsed, out, raw).ok());
    EXPECT_EQ(ReadAllBytes(out),
              ReadAllBytes(DataPath(std::string("fixture_") + stem +
                                    "_v1.snap")));
    std::remove(out.c_str());
  }
}

// A v1 snapshot survives a load -> compressed (v2) save -> load cycle
// unchanged: the two load paths must agree bit for bit.
TEST(FormatCompatTest, V1ToV2RoundTripPreservesGraph) {
  auto v1 = store::LoadSnapshot(DataPath("fixture_base_v1.snap"), nullptr);
  ASSERT_TRUE(v1.ok()) << v1.status();
  const std::string out = TempPath("v2.snap");
  ASSERT_TRUE(store::WriteSnapshot(*v1, out).ok());
  auto info = store::ReadSnapshotInfo(out);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kFormatVersionFrontCoded);
  auto v2 = store::LoadSnapshot(out, nullptr);
  ASSERT_TRUE(v2.ok()) << v2.status();
  EXPECT_TRUE(BitIdentical(*v1, *v2));
  EXPECT_EQ(store::GraphFingerprint(*v2), kBaseFingerprint);
  std::remove(out.c_str());
}

TEST(FormatCompatTest, V1DeltaStillApplies) {
  auto info = store::ReadDeltaInfo(DataPath("fixture_v1.delta"));
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kDeltaFormatVersion);
  EXPECT_EQ(info->sections.size(), store::kNumDeltaSections);
  EXPECT_EQ(info->base_fingerprint, kBaseFingerprint);

  auto base = store::LoadSnapshot(DataPath("fixture_base_v1.snap"), nullptr);
  ASSERT_TRUE(base.ok()) << base.status();
  auto applied =
      store::ApplyDelta(*base, DataPath("fixture_v1.delta"), nullptr);
  ASSERT_TRUE(applied.ok()) << applied.status();
  auto next = store::LoadSnapshot(DataPath("fixture_next_v1.snap"), nullptr);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_TRUE(BitIdentical(*next, *applied));
}

TEST(FormatCompatTest, V1UpdateFragmentStillDecodes) {
  auto batch = store::ReadUpdateFile(DataPath("fixture_v1.rdfu"));
  ASSERT_TRUE(batch.ok()) << batch.status();
  EXPECT_EQ(batch->sequence, 7u);
  EXPECT_GT(batch->added.size() + batch->removed.size(), 0u);
}

TEST(FormatCompatTest, V1ArchiveStillLoads) {
  auto fp = store::ArchiveBaseFingerprint(DataPath("fixture_v1.archive"));
  ASSERT_TRUE(fp.ok()) << fp.status();
  EXPECT_EQ(*fp, kBaseFingerprint);

  store::ArchiveLoadStats stats;
  auto archive = store::LoadArchive(DataPath("fixture_v1.archive"), {},
                                    &stats);
  ASSERT_TRUE(archive.ok()) << archive.status();
  ASSERT_EQ(stats.versions, 2u);
  auto base = store::LoadSnapshot(DataPath("fixture_base_v1.snap"), nullptr);
  ASSERT_TRUE(base.ok()) << base.status();
  auto next = store::LoadSnapshot(DataPath("fixture_next_v1.snap"), nullptr);
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_TRUE(BitIdentical(archive->Version(0), *base));
  EXPECT_TRUE(BitIdentical(archive->Version(1), *next));
}

}  // namespace
}  // namespace rdfalign
