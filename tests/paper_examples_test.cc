// End-to-end encodings of the paper's worked examples (Figs. 1-8,
// Examples 1-6). These are the ground-truth fixtures for the whole method
// stack: if one of these fails, the reproduction has diverged from the
// paper.

#include <gtest/gtest.h>

#include "core/aligner.h"
#include "core/bisim.h"
#include "core/deblank.h"
#include "core/hybrid.h"
#include "core/sigma_edit.h"
#include "test_util.h"

namespace rdfalign {
namespace {

// --- Example 1 / Figure 1 -------------------------------------------------

TEST(Example1, TrivialAlignsLabelEqualNodes) {
  auto [v1, v2] = testing::Fig1Graphs();
  auto cg = testing::Combine(v1, v2);
  Partition p = TrivialPartition(cg.graph());
  const TripleGraph& g = cg.graph();
  // "a majority of literals and one URI, ss, can be trivially aligned".
  auto sides = ComputeClassSides(cg, p);
  EXPECT_EQ(sides[p.ColorOf(g.FindUri("ex:ss"))], ClassSides::kBoth);
  EXPECT_EQ(sides[p.ColorOf(g.FindLiteral("Edinburgh"))], ClassSides::kBoth);
  EXPECT_EQ(sides[p.ColorOf(g.FindLiteral("EH8"))], ClassSides::kBoth);
  // The address blanks are not trivially aligned.
  EXPECT_NE(sides[p.ColorOf(g.FindBlank("b1"))], ClassSides::kBoth);
}

TEST(Example1, BisimulationAlignsAddressRecordAndUniversity) {
  auto [v1, v2] = testing::Fig1Graphs();
  auto cg = testing::Combine(v1, v2);
  const TripleGraph& g = cg.graph();
  // "Bisimulation aligns the blank nodes b1 and b3 because they represent
  // a record with the same information structured in the same manner."
  Partition deblank = DeblankPartition(cg);
  EXPECT_EQ(deblank.ColorOf(g.FindBlank("b1")),
            deblank.ColorOf(g.FindBlank("b3")));
  // "Similarly, bisimulation aligns the nodes ed-uni and uoe" — that part
  // needs the hybrid method (different URI labels).
  Partition hybrid = HybridPartition(cg);
  EXPECT_EQ(hybrid.ColorOf(g.FindUri("ex:ed-uni")),
            hybrid.ColorOf(g.FindUri("ex:uoe")));
  // "bisimulation does not align the nodes b2 and b4" (the name records
  // with the edited first name).
  EXPECT_NE(hybrid.ColorOf(g.FindBlank("b2")),
            hybrid.ColorOf(g.FindBlank("b4")));
}

TEST(Example1, SimilarityMeasureAlignsTheNameRecords) {
  auto [v1, v2] = testing::Fig1Graphs();
  auto cg = testing::Combine(v1, v2);
  const TripleGraph& g = cg.graph();
  Partition hybrid = HybridPartition(cg);
  auto se = SigmaEdit::Compute(cg, hybrid);
  ASSERT_TRUE(se.ok());
  // σEdit aligns b2 with b4 at a moderate threshold.
  auto pairs = se->AlignAt(0.55);
  bool aligned = false;
  for (auto [a, b] : pairs) {
    if (a == g.FindBlank("b2") && b == g.FindBlank("b4")) aligned = true;
  }
  EXPECT_TRUE(aligned);
}

// --- Example 2 / Figures 2 and 4 -------------------------------------------

TEST(Example2, FixpointColorsOfFigure4) {
  TripleGraph g = testing::Fig2Graph();
  // λ0 = ℓG: b1, b2, b3 share the blank color.
  Partition l0 = LabelPartition(g);
  EXPECT_EQ(l0.ColorOf(g.FindBlank("b1")), l0.ColorOf(g.FindBlank("b2")));
  // "after the first iteration they are split into two separate classes"
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  Partition l1 = BisimRefineStep(g, l0, all);
  EXPECT_NE(l1.ColorOf(g.FindBlank("b1")), l1.ColorOf(g.FindBlank("b2")));
  EXPECT_EQ(l1.ColorOf(g.FindBlank("b2")), l1.ColorOf(g.FindBlank("b3")));
  // "Since the partition λ2 is the same as the previous partition λ1, the
  // end result is λ1."
  Partition l2 = BisimRefineStep(g, l1, all);
  EXPECT_TRUE(Partition::Equivalent(l1, l2));
  RefinementStats stats;
  Partition fix = BisimRefineFixpoint(g, l0, all, &stats);
  EXPECT_TRUE(Partition::Equivalent(fix, l1));
}

// --- Example 3 / Figures 3 and 5 -------------------------------------------

TEST(Example3, DeblankColorsOfFigure5) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  Partition p = DeblankPartition(cg);
  // "both the nodes b2 and b3 are aligned to b4"
  EXPECT_EQ(p.ColorOf(g.FindBlank("b2")), p.ColorOf(g.FindBlank("b4")));
  EXPECT_EQ(p.ColorOf(g.FindBlank("b3")), p.ColorOf(g.FindBlank("b4")));
  // "the node b1 is not aligned to b5 because their colors differ"
  EXPECT_NE(p.ColorOf(g.FindBlank("b1")), p.ColorOf(g.FindBlank("b5")));
}

// --- Example 4 / Figure 6 ---------------------------------------------------

TEST(Example4, HybridColorsOfFigure6) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  Partition p = HybridPartition(cg);
  // "the final colors of nodes u and v coincide and therefore these two
  // nodes are aligned by Hybrid. Similarly, Hybrid aligns the blank nodes
  // b1 and b5."
  EXPECT_EQ(p.ColorOf(g.FindUri("ex:u")), p.ColorOf(g.FindUri("ex:v")));
  EXPECT_EQ(p.ColorOf(g.FindBlank("b1")), p.ColorOf(g.FindBlank("b5")));
  // Previously aligned pairs are kept.
  EXPECT_EQ(p.ColorOf(g.FindBlank("b2")), p.ColorOf(g.FindBlank("b4")));
}

TEST(Example4, ProperHierarchyOnFigure3) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  EdgeAlignmentStats trivial =
      ComputeEdgeAlignment(cg, TrivialPartition(cg.graph()));
  EdgeAlignmentStats deblank = ComputeEdgeAlignment(cg, DeblankPartition(cg));
  EdgeAlignmentStats hybrid = ComputeEdgeAlignment(cg, HybridPartition(cg));
  EXPECT_LT(trivial.aligned_edges, deblank.aligned_edges);
  EXPECT_LT(deblank.aligned_edges, hybrid.aligned_edges);
  // Hybrid aligns every edge of Figure 3's union.
  EXPECT_DOUBLE_EQ(hybrid.Ratio(), 1.0);
}

// --- Example 5 / Figure 7 ---------------------------------------------------

TEST(Example5, AllFourDistances) {
  auto [g1, g2] = testing::Fig7Graphs();
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  auto se = SigmaEdit::Compute(cg, HybridPartition(cg));
  ASSERT_TRUE(se.ok());
  NodeId abc = g.FindLiteral("abc");
  NodeId ac = kInvalidNode;
  for (NodeId n = cg.n1(); n < g.NumNodes(); ++n) {
    if (g.IsLiteral(n) && g.Lexical(n) == "ac") ac = n;
  }
  ASSERT_NE(ac, kInvalidNode);
  EXPECT_NEAR(se->Distance(abc, ac), 1.0 / 3, 1e-9);
  EXPECT_NEAR(se->Distance(g.FindUri("ex:u"), g.FindUri("ex:u2")), 1.0 / 3,
              1e-9);
  EXPECT_NEAR(se->Distance(g.FindUri("ex:v"), g.FindUri("ex:v2")), 1.0 / 6,
              1e-9);
  EXPECT_NEAR(se->Distance(g.FindUri("ex:w"), g.FindUri("ex:w2")), 1.0 / 4,
              1e-9);
}

// --- Example 6 / Figure 8 ---------------------------------------------------

TEST(Example6, WeightedPartitionApproximatesSigmaEdit) {
  // Figure 8's hand-built weighted partition: distances 1/3 between
  // "abc"/"ac" and 1/4 between w/w2 under the ⊕ combination.
  WeightedPartition xi;
  // clusters: {abc, ac} and {w, w2}.
  xi.partition = Partition::FromColors({0, 0, 1, 1});
  xi.weight = {2.0 / 9, 1.0 / 9, 2.0 / 9, 1.0 / 36};
  EXPECT_DOUBLE_EQ(xi.Distance(0, 1), 1.0 / 3);
  EXPECT_DOUBLE_EQ(xi.Distance(2, 3), 1.0 / 4);
  // "for the nodes u and v′ the weighted partition defines distance 1
  // because those nodes are in different clusters."
  EXPECT_DOUBLE_EQ(xi.Distance(0, 2), 1.0);
}

// --- Aligner facade over the examples ---------------------------------------

TEST(AlignerFacade, MethodsRankAsExpectedOnFig3) {
  auto [g1, g2] = testing::Fig3Graphs();
  size_t previous = 0;
  for (AlignMethod m : {AlignMethod::kTrivial, AlignMethod::kDeblank,
                        AlignMethod::kHybrid, AlignMethod::kOverlap}) {
    AlignerOptions options;
    options.method = m;
    Aligner aligner(options);
    auto outcome = aligner.Align(g1, g2);
    ASSERT_TRUE(outcome.ok()) << AlignMethodToString(m);
    EXPECT_GE(outcome->edge_stats.aligned_edges, previous)
        << AlignMethodToString(m);
    previous = outcome->edge_stats.aligned_edges;
  }
}

}  // namespace
}  // namespace rdfalign
