#include "core/weighted_partition.h"

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(OPlusTest, TruncatedAddition) {
  EXPECT_DOUBLE_EQ(OPlus(0.2, 0.3), 0.5);
  EXPECT_DOUBLE_EQ(OPlus(0.7, 0.7), 1.0);
  EXPECT_DOUBLE_EQ(OPlus(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(OPlus(1.0, 0.0), 1.0);
}

TEST(OPlusTest, TriangleCompatibility) {
  // σ(n,z) ⊕ σ(z,m) >= σ(n,m) is required of the operator; for the
  // truncated addition this reduces to monotonicity + commutativity.
  EXPECT_DOUBLE_EQ(OPlus(0.2, 0.3), OPlus(0.3, 0.2));
  EXPECT_LE(OPlus(0.2, 0.3), OPlus(0.25, 0.3));
}

TEST(WeightedPartitionTest, DistancePerEq5) {
  // Figure 8's weighted partition: "abc" (2/9) and "ac" (1/9) share a
  // cluster -> distance 1/3; w (2/9) and w2 (1/36) -> 1/4; cross-cluster
  // pairs -> 1.
  WeightedPartition xi;
  xi.partition = Partition::FromColors({0, 0, 1, 1, 2});
  xi.weight = {2.0 / 9, 1.0 / 9, 2.0 / 9, 1.0 / 36, 0.4};
  EXPECT_DOUBLE_EQ(xi.Distance(0, 1), 1.0 / 3);
  EXPECT_DOUBLE_EQ(xi.Distance(2, 3), 1.0 / 4);
  EXPECT_DOUBLE_EQ(xi.Distance(0, 2), 1.0);  // different clusters
  EXPECT_DOUBLE_EQ(xi.Distance(4, 4), 0.8);  // self ⊕ under weights
}

TEST(WeightedPartitionTest, MakeZeroWeighted) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(cg));
  EXPECT_EQ(xi.weight.size(), cg.graph().NumNodes());
  for (double w : xi.weight) EXPECT_DOUBLE_EQ(w, 0.0);
  // With zero weights the distance is 0 within a class, 1 across.
  NodeId u = cg.graph().FindUri("ex:u");
  NodeId v = cg.graph().FindUri("ex:v");
  EXPECT_DOUBLE_EQ(xi.Distance(u, v), 0.0);
}

TEST(WeightedAlignTest, ThresholdFiltersPairs) {
  // Two clusters: c0 = {source a, target b} with weights 0.3/0.3 (distance
  // 0.6), c1 = {source c, target d} with weights 0.1/0.05 (distance 0.15).
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder builder1(dict);
  NodeId a = builder1.AddUri("ex:a");
  NodeId c = builder1.AddUri("ex:c");
  NodeId p1 = builder1.AddUri("ex:p");
  builder1.AddTriple(a, p1, c);
  GraphBuilder builder2(dict);
  NodeId b = builder2.AddUri("ex:b");
  NodeId d = builder2.AddUri("ex:d");
  NodeId p2 = builder2.AddUri("ex:p");
  builder2.AddTriple(b, p2, d);
  auto g1 = std::move(builder1.Build(true)).value();
  auto g2 = std::move(builder2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);

  WeightedPartition xi;
  // Filler nodes (the two ex:p copies) get distinct singleton colors so
  // only the two clusters under test align.
  std::vector<ColorId> colors(cg.graph().NumNodes());
  for (size_t i = 0; i < colors.size(); ++i) {
    colors[i] = static_cast<ColorId>(100 + i);
  }
  colors[a] = 0;
  colors[cg.FromTarget(b)] = 0;
  colors[c] = 1;
  colors[cg.FromTarget(d)] = 1;
  xi.partition = Partition::FromColors(std::move(colors));
  xi.weight.assign(cg.graph().NumNodes(), 0.0);
  xi.weight[a] = 0.3;
  xi.weight[cg.FromTarget(b)] = 0.3;
  xi.weight[c] = 0.1;
  xi.weight[cg.FromTarget(d)] = 0.05;

  auto at_05 = EnumerateAlignedPairsWeighted(cg, xi, 0.5);
  ASSERT_EQ(at_05.size(), 1u);
  EXPECT_EQ(at_05[0].first, c);
  auto at_07 = EnumerateAlignedPairsWeighted(cg, xi, 0.7);
  EXPECT_EQ(at_07.size(), 2u);
  auto at_01 = EnumerateAlignedPairsWeighted(cg, xi, 0.1);
  EXPECT_TRUE(at_01.empty());

  EXPECT_EQ(CountAlignedClassesWeighted(cg, xi, 0.5), 1u);
  EXPECT_EQ(CountAlignedClassesWeighted(cg, xi, 0.7), 2u);
}

}  // namespace
}  // namespace rdfalign
