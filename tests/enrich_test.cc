#include "core/enrich.h"

#include <gtest/gtest.h>

#include "core/alignment.h"
#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

// A small combined graph with two unaligned literals per side.
struct EnrichFixture {
  EnrichFixture() {
    auto dict = std::make_shared<Dictionary>();
    GraphBuilder b1(dict);
    NodeId s1 = b1.AddUri("ex:s1");
    NodeId p1 = b1.AddUri("ex:p");
    lit_a1 = b1.AddLiteral("alpha one");
    lit_b1 = b1.AddLiteral("beta one");
    b1.AddTriple(s1, p1, lit_a1);
    b1.AddTriple(s1, p1, lit_b1);
    GraphBuilder b2(dict);
    NodeId s2 = b2.AddUri("ex:s2");
    NodeId p2 = b2.AddUri("ex:p");
    lit_a2 = b2.AddLiteral("alpha 1");
    lit_b2 = b2.AddLiteral("beta 1");
    b2.AddTriple(s2, p2, lit_a2);
    b2.AddTriple(s2, p2, lit_b2);
    g1 = std::move(b1.Build(true)).value();
    g2 = std::move(b2.Build(true)).value();
    cg = std::make_unique<CombinedGraph>(testing::Combine(g1, g2));
    // Combined ids.
    lit_a2 = cg->FromTarget(lit_a2);
    lit_b2 = cg->FromTarget(lit_b2);
  }
  TripleGraph g1, g2;
  std::unique_ptr<CombinedGraph> cg;
  NodeId lit_a1, lit_b1, lit_a2, lit_b2;
};

TEST(EnrichTest, EmptyMatchingIsIdentity) {
  EnrichFixture f;
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(*f.cg));
  WeightedPartition out = Enrich(xi, BipartiteMatching{});
  EXPECT_TRUE(Partition::Equivalent(out.partition, xi.partition));
  EXPECT_EQ(out.weight, xi.weight);
}

TEST(EnrichTest, SinglePairFormsClusterWithHalfWeights) {
  EnrichFixture f;
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(*f.cg));
  ASSERT_NE(xi.partition.ColorOf(f.lit_a1), xi.partition.ColorOf(f.lit_a2));
  BipartiteMatching h;
  h.edges.push_back(MatchEdge{f.lit_a1, f.lit_a2, 0.4});
  WeightedPartition out = Enrich(xi, h);
  EXPECT_EQ(out.partition.ColorOf(f.lit_a1),
            out.partition.ColorOf(f.lit_a2));
  // w = ½·max distance to the opposite side = 0.2 each; the consistency
  // requirement d ≤ w(a) ⊕ w(b) holds with equality.
  EXPECT_DOUBLE_EQ(out.weight[f.lit_a1], 0.2);
  EXPECT_DOUBLE_EQ(out.weight[f.lit_a2], 0.2);
  // Unrelated literals untouched.
  EXPECT_NE(out.partition.ColorOf(f.lit_b1),
            out.partition.ColorOf(f.lit_a1));
  EXPECT_DOUBLE_EQ(out.weight[f.lit_b1], 0.0);
}

TEST(EnrichTest, TwoIndependentComponents) {
  EnrichFixture f;
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(*f.cg));
  BipartiteMatching h;
  h.edges.push_back(MatchEdge{f.lit_a1, f.lit_a2, 0.2});
  h.edges.push_back(MatchEdge{f.lit_b1, f.lit_b2, 0.6});
  WeightedPartition out = Enrich(xi, h);
  EXPECT_EQ(out.partition.ColorOf(f.lit_a1),
            out.partition.ColorOf(f.lit_a2));
  EXPECT_EQ(out.partition.ColorOf(f.lit_b1),
            out.partition.ColorOf(f.lit_b2));
  EXPECT_NE(out.partition.ColorOf(f.lit_a1),
            out.partition.ColorOf(f.lit_b1));
  EXPECT_DOUBLE_EQ(out.weight[f.lit_a1], 0.1);
  EXPECT_DOUBLE_EQ(out.weight[f.lit_b1], 0.3);
}

TEST(EnrichTest, StarComponentUsesMaxDistance) {
  // One source node matched to both targets (a 3-node component).
  EnrichFixture f;
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(*f.cg));
  BipartiteMatching h;
  h.edges.push_back(MatchEdge{f.lit_a1, f.lit_a2, 0.1});
  h.edges.push_back(MatchEdge{f.lit_a1, f.lit_b2, 0.5});
  WeightedPartition out = Enrich(xi, h);
  EXPECT_EQ(out.partition.ColorOf(f.lit_a1),
            out.partition.ColorOf(f.lit_a2));
  EXPECT_EQ(out.partition.ColorOf(f.lit_a1),
            out.partition.ColorOf(f.lit_b2));
  // w(a1) = ½·max(0.1, 0.5) = 0.25.
  EXPECT_DOUBLE_EQ(out.weight[f.lit_a1], 0.25);
  // w(a2) = ½·d*(a2, a1) = 0.05; w(b2) = ½·0.5 = 0.25.
  EXPECT_DOUBLE_EQ(out.weight[f.lit_a2], 0.05);
  EXPECT_DOUBLE_EQ(out.weight[f.lit_b2], 0.25);
  // Consistency d*(a,b) ≤ w(a) ⊕ w(b) for every cross pair.
  EXPECT_LE(0.1, out.weight[f.lit_a1] + out.weight[f.lit_a2] + 1e-12);
  EXPECT_LE(0.5, out.weight[f.lit_a1] + out.weight[f.lit_b2] + 1e-12);
}

TEST(EnrichTest, PathDistancesUseOPlus) {
  // Component a1 - a2 - b1 - b2 (alternating sides): d*(a1,b2) = 0.2+0.3+0.4.
  EnrichFixture f;
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(*f.cg));
  BipartiteMatching h;
  h.edges.push_back(MatchEdge{f.lit_a1, f.lit_a2, 0.2});
  h.edges.push_back(MatchEdge{f.lit_b1, f.lit_a2, 0.3});
  h.edges.push_back(MatchEdge{f.lit_b1, f.lit_b2, 0.4});
  WeightedPartition out = Enrich(xi, h);
  // All four in one cluster.
  ColorId c = out.partition.ColorOf(f.lit_a1);
  EXPECT_EQ(out.partition.ColorOf(f.lit_b2), c);
  // w(a1) = ½·max(d(a1,a2)=0.2, d(a1,b2)=0.9) = 0.45.
  EXPECT_DOUBLE_EQ(out.weight[f.lit_a1], 0.45);
  // Consistency for the far pair: 0.9 <= 0.45 ⊕ w(b2)=½·0.9.
  EXPECT_LE(0.9, OPlus(out.weight[f.lit_a1], out.weight[f.lit_b2]) + 1e-12);
}

}  // namespace
}  // namespace rdfalign
