// Pins the nearest-rank Percentile definition (util/stats.h) on small
// sample sets, where the old floor(p * (n - 1)) interpolation index and
// the true nearest-rank ceil(p * n) visibly disagree: p95 of 10 samples
// must be the 10th value (the smallest with >= 95% of the mass at or
// below it), not the 9th. The daemon's stats verb and the bench tables
// share this one implementation, so these cases pin both.

#include "util/stats.h"

#include <gtest/gtest.h>

#include <vector>

namespace rdfalign {
namespace {

// Ten distinct samples, recorded out of order (Percentile sorts a copy).
std::vector<double> TenSamples() {
  return {7, 2, 10, 4, 9, 1, 6, 3, 8, 5};
}

TEST(PercentileTest, EmptyIsZero) {
  EXPECT_EQ(Percentile({}, 0.5), 0.0);
}

TEST(PercentileTest, SingleSampleIsThatSampleAtEveryP) {
  EXPECT_EQ(Percentile({42.0}, 0.0), 42.0);
  EXPECT_EQ(Percentile({42.0}, 0.5), 42.0);
  EXPECT_EQ(Percentile({42.0}, 1.0), 42.0);
}

TEST(PercentileTest, ZeroIsMinimumOneIsMaximum) {
  EXPECT_EQ(Percentile(TenSamples(), 0.0), 1.0);
  EXPECT_EQ(Percentile(TenSamples(), 1.0), 10.0);
}

TEST(PercentileTest, P95OfTenIsTenthValue) {
  // ceil(0.95 * 10) = 10 -> rank 10, the maximum. The old
  // floor(0.95 * 9) = 8 indexing returned the 9th value (9.0).
  EXPECT_EQ(Percentile(TenSamples(), 0.95), 10.0);
}

TEST(PercentileTest, P99OfTenIsTenthValue) {
  EXPECT_EQ(Percentile(TenSamples(), 0.99), 10.0);
}

TEST(PercentileTest, P50OfTenIsFifthValue) {
  // ceil(0.5 * 10) = 5 -> rank 5 (nearest-rank medians take the lower of
  // the two middle values).
  EXPECT_EQ(Percentile(TenSamples(), 0.5), 5.0);
}

TEST(PercentileTest, P90OfTenIsNinthValue) {
  // ceil(0.9 * 10) = 9: exactly 90% of the mass sits at or below the 9th
  // value, so rank 9 — not the maximum.
  EXPECT_EQ(Percentile(TenSamples(), 0.9), 9.0);
}

TEST(PercentileTest, P50OfTwoIsLowerValue) {
  // ceil(0.5 * 2) = 1 -> the first of the two.
  EXPECT_EQ(Percentile({2.0, 1.0}, 0.5), 1.0);
}

TEST(PercentileTest, P75OfFourIsThirdValue) {
  EXPECT_EQ(Percentile({4.0, 1.0, 3.0, 2.0}, 0.75), 3.0);
}

TEST(PercentileTest, DoesNotDisturbCallerOrder) {
  std::vector<double> samples = {3.0, 1.0, 2.0};
  (void)Percentile(samples, 0.5);
  EXPECT_EQ(samples, (std::vector<double>{3.0, 1.0, 2.0}));
}

}  // namespace
}  // namespace rdfalign
