#include "util/string_util.h"

#include <gtest/gtest.h>

namespace rdfalign {
namespace {

TEST(SplitTest, BasicAndEmptyFields) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(SplitTest, NoSeparatorYieldsWhole) {
  auto parts = Split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(SplitWordsTest, LowercasesAndSplitsOnNonAlnum) {
  auto words = SplitWords("University of Edinburgh, EH8!");
  ASSERT_EQ(words.size(), 4u);
  EXPECT_EQ(words[0], "university");
  EXPECT_EQ(words[1], "of");
  EXPECT_EQ(words[2], "edinburgh");
  EXPECT_EQ(words[3], "eh8");
}

TEST(SplitWordsTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(SplitWords("").empty());
  EXPECT_TRUE(SplitWords("--- !!").empty());
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"x"}, ","), "x");
}

TEST(TrimTest, RemovesSurroundingWhitespace) {
  EXPECT_EQ(Trim("  x y \t\n"), "x y");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(CaseAndAffixTest, Basics) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("http://x", "http://"));
  EXPECT_FALSE(StartsWith("ftp://x", "http://"));
  EXPECT_TRUE(EndsWith("file.nt", ".nt"));
  EXPECT_FALSE(EndsWith("file.ttl", ".nt"));
}

TEST(NTriplesEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(EscapeNTriplesString("a\"b\\c\nd\te\rf"),
            "a\\\"b\\\\c\\nd\\te\\rf");
}

TEST(NTriplesEscapeTest, RoundTrip) {
  std::string original = "line1\nline2\t\"quoted\" \\slash";
  std::string unescaped;
  ASSERT_TRUE(UnescapeNTriplesString(EscapeNTriplesString(original),
                                     &unescaped));
  EXPECT_EQ(unescaped, original);
}

TEST(NTriplesEscapeTest, UnicodeEscapes) {
  std::string out;
  ASSERT_TRUE(UnescapeNTriplesString("\\u0041\\u00e9", &out));
  EXPECT_EQ(out, "A\xc3\xa9");  // 'A' + e-acute in UTF-8
  ASSERT_TRUE(UnescapeNTriplesString("\\U0001F600", &out));
  EXPECT_EQ(out.size(), 4u);  // 4-byte UTF-8 sequence
}

TEST(NTriplesEscapeTest, RejectsMalformedEscapes) {
  std::string out;
  EXPECT_FALSE(UnescapeNTriplesString("\\", &out));
  EXPECT_FALSE(UnescapeNTriplesString("\\x", &out));
  EXPECT_FALSE(UnescapeNTriplesString("\\u12", &out));
  EXPECT_FALSE(UnescapeNTriplesString("\\uZZZZ", &out));
}

TEST(FormatTest, CommasAndDoubles) {
  EXPECT_EQ(FormatWithCommas(0), "0");
  EXPECT_EQ(FormatWithCommas(999), "999");
  EXPECT_EQ(FormatWithCommas(1000), "1,000");
  EXPECT_EQ(FormatWithCommas(1234567), "1,234,567");
  EXPECT_EQ(FormatDouble(0.25, 2), "0.25");
  EXPECT_EQ(FormatDouble(1.0 / 3.0, 3), "0.333");
}

}  // namespace
}  // namespace rdfalign
