#include "core/sigma_edit.h"

#include <gtest/gtest.h>

#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

struct Fig7Fixture {
  Fig7Fixture() {
    auto graphs = testing::Fig7Graphs();
    g1 = std::move(graphs.first);
    g2 = std::move(graphs.second);
    cg = std::make_unique<CombinedGraph>(testing::Combine(g1, g2));
    hybrid = HybridPartition(*cg);
    auto result = SigmaEdit::Compute(*cg, hybrid);
    EXPECT_TRUE(result.ok()) << result.status();
    se = std::make_unique<SigmaEdit>(std::move(result).value());
  }
  NodeId Find(const char* label, bool literal = false) const {
    NodeId n = literal ? cg->graph().FindLiteral(label)
                       : cg->graph().FindUri(label);
    EXPECT_NE(n, kInvalidNode) << label;
    return n;
  }
  TripleGraph g1, g2;
  std::unique_ptr<CombinedGraph> cg;
  Partition hybrid;
  std::unique_ptr<SigmaEdit> se;
};

TEST(SigmaEditTest, HybridAlignedPairsAreAtDistanceZero) {
  Fig7Fixture f;
  // "c" and the predicates are trivially aligned: distance 0.
  NodeId c1 = f.Find("c", true);
  // FindLiteral returns the source-side node; the target copy sits at the
  // same label. Locate it by scanning the target side.
  NodeId c2 = kInvalidNode;
  for (NodeId n = f.cg->n1(); n < f.cg->graph().NumNodes(); ++n) {
    if (f.cg->graph().IsLiteral(n) && f.cg->graph().Lexical(n) == "c") c2 = n;
  }
  ASSERT_NE(c2, kInvalidNode);
  EXPECT_DOUBLE_EQ(f.se->Distance(c1, c2), 0.0);
}

TEST(SigmaEditTest, AlignedVsUnalignedIsOne) {
  Fig7Fixture f;
  // "a" is aligned; "ac" is not: σ = 1 even though the raw normalized edit
  // distance is 1/2 (the Example 5 remark).
  NodeId a = f.Find("a", true);
  NodeId ac = kInvalidNode;
  for (NodeId n = f.cg->n1(); n < f.cg->graph().NumNodes(); ++n) {
    if (f.cg->graph().IsLiteral(n) && f.cg->graph().Lexical(n) == "ac") {
      ac = n;
    }
  }
  ASSERT_NE(ac, kInvalidNode);
  EXPECT_DOUBLE_EQ(f.se->Distance(a, ac), 1.0);
}

TEST(SigmaEditTest, Example5LiteralDistance) {
  Fig7Fixture f;
  NodeId abc = f.Find("abc", true);
  NodeId ac = kInvalidNode;
  for (NodeId n = f.cg->n1(); n < f.cg->graph().NumNodes(); ++n) {
    if (f.cg->graph().IsLiteral(n) && f.cg->graph().Lexical(n) == "ac") {
      ac = n;
    }
  }
  EXPECT_DOUBLE_EQ(f.se->Distance(abc, ac), 1.0 / 3.0);
}

TEST(SigmaEditTest, Example5PropagatedDistances) {
  Fig7Fixture f;
  NodeId u = f.Find("ex:u");
  NodeId v = f.Find("ex:v");
  NodeId w = f.Find("ex:w");
  NodeId u2 = f.Find("ex:u2");
  NodeId v2 = f.Find("ex:v2");
  NodeId w2 = f.Find("ex:w2");
  // The Example 5 values.
  EXPECT_NEAR(f.se->Distance(u, u2), 1.0 / 3.0, 1e-9);
  EXPECT_NEAR(f.se->Distance(v, v2), 1.0 / 6.0, 1e-9);
  EXPECT_NEAR(f.se->Distance(w, w2), 1.0 / 4.0, 1e-9);
  // Cross pairs are far.
  EXPECT_GT(f.se->Distance(u, v2), 0.5);
  EXPECT_GT(f.se->Distance(v, u2), 0.5);
}

TEST(SigmaEditTest, AlignAtThresholdPicksClosePairs) {
  Fig7Fixture f;
  auto pairs = f.se->AlignAt(0.3);
  // Contains (v, v2) at 1/6 and (w, w2) at 1/4 but not (u, u2) at 1/3.
  NodeId v = f.Find("ex:v");
  NodeId v2 = f.Find("ex:v2");
  NodeId u = f.Find("ex:u");
  NodeId u2 = f.Find("ex:u2");
  bool has_v = false;
  bool has_u = false;
  for (auto [a, b] : pairs) {
    if (a == v && b == v2) has_v = true;
    if (a == u && b == u2) has_u = true;
  }
  EXPECT_TRUE(has_v);
  EXPECT_FALSE(has_u);
}

TEST(SigmaEditTest, MatrixCapIsEnforced) {
  Fig7Fixture f;
  SigmaEditOptions options;
  options.max_matrix_entries = 1;
  auto result = SigmaEdit::Compute(*f.cg, f.hybrid, options);
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsOutOfRange());
}

TEST(SigmaEditTest, Figure1NameRecordsAreClose) {
  // The motivating example: b2 (Slawek/Pawel/Staworko) vs b4
  // (Slawomir/Staworko) should be within distance ~0.5 — the similarity
  // method aligns what bisimulation cannot.
  auto [g1, g2] = testing::Fig1Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition hybrid = HybridPartition(cg);
  auto se = SigmaEdit::Compute(cg, hybrid);
  ASSERT_TRUE(se.ok());
  NodeId b2 = cg.graph().FindBlank("b2");
  NodeId b4 = cg.graph().FindBlank("b4");
  ASSERT_NE(hybrid.ColorOf(b2), hybrid.ColorOf(b4));  // hybrid can't
  double d = se->Distance(b2, b4);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 0.51);
  // And the aligned pairs at θ=0.55 include (b2, b4).
  auto pairs = se->AlignAt(0.55);
  bool found = false;
  for (auto [a, b] : pairs) {
    if (a == b2 && b == b4) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace rdfalign
