// Tests of the alignment-method family (§3): Deblank, Hybrid, and their
// hierarchy/equivalence properties.

#include <gtest/gtest.h>

#include <set>

#include "core/alignment.h"
#include "core/deblank.h"
#include "core/hybrid.h"
#include "test_util.h"

namespace rdfalign {
namespace {

std::set<std::pair<NodeId, NodeId>> AlignSet(const CombinedGraph& cg,
                                             const Partition& p) {
  auto pairs = EnumerateAlignedPairs(cg, p);
  return {pairs.begin(), pairs.end()};
}

TEST(DeblankTest, AlignsMergedBlanksInFig3) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = DeblankPartition(cg);
  NodeId b2 = cg.graph().FindBlank("b2");
  NodeId b3 = cg.graph().FindBlank("b3");
  NodeId b4 = cg.graph().FindBlank("b4");
  NodeId b1 = cg.graph().FindBlank("b1");
  NodeId b5 = cg.graph().FindBlank("b5");
  EXPECT_EQ(p.ColorOf(b2), p.ColorOf(b4));
  EXPECT_EQ(p.ColorOf(b3), p.ColorOf(b4));
  // b1 reaches the renamed URI, so deblanking cannot align it with b5.
  EXPECT_NE(p.ColorOf(b1), p.ColorOf(b5));
}

TEST(HybridTest, AlignsRenamedUriAndDependentBlankInFig3) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = HybridPartition(cg);
  NodeId u = cg.graph().FindUri("ex:u");
  NodeId v = cg.graph().FindUri("ex:v");
  NodeId b1 = cg.graph().FindBlank("b1");
  NodeId b5 = cg.graph().FindBlank("b5");
  EXPECT_EQ(p.ColorOf(u), p.ColorOf(v));
  EXPECT_EQ(p.ColorOf(b1), p.ColorOf(b5));
  // And the deblank alignments are preserved.
  EXPECT_EQ(p.ColorOf(cg.graph().FindBlank("b2")),
            p.ColorOf(cg.graph().FindBlank("b4")));
}

TEST(HierarchyTest, TrivialSubsetDeblankSubsetHybridOnFig3) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  auto trivial = AlignSet(cg, TrivialPartition(cg.graph()));
  auto deblank = AlignSet(cg, DeblankPartition(cg));
  auto hybrid = AlignSet(cg, HybridPartition(cg));
  EXPECT_TRUE(std::includes(deblank.begin(), deblank.end(), trivial.begin(),
                            trivial.end()));
  EXPECT_TRUE(std::includes(hybrid.begin(), hybrid.end(), deblank.begin(),
                            deblank.end()));
  EXPECT_LT(trivial.size(), deblank.size());
  EXPECT_LT(deblank.size(), hybrid.size());
}

TEST(HybridTest, TrivialStartYieldsSamePartitionOnFig3) {
  // §3.4: "Using λTrivial instead of λDeblank above yields the same result."
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition from_deblank = HybridPartitionFrom(cg, DeblankPartition(cg));
  Partition from_trivial =
      HybridPartitionFrom(cg, TrivialPartition(cg.graph()));
  EXPECT_EQ(AlignSet(cg, from_deblank), AlignSet(cg, from_trivial));
}

// Property sweep over random evolving pairs.
class MethodHierarchyProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MethodHierarchyProperty, AlignmentsFormAHierarchy) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  auto trivial = AlignSet(cg, TrivialPartition(cg.graph()));
  auto deblank = AlignSet(cg, DeblankPartition(cg));
  auto hybrid = AlignSet(cg, HybridPartition(cg));
  EXPECT_TRUE(std::includes(deblank.begin(), deblank.end(), trivial.begin(),
                            trivial.end()))
      << "Trivial ⊄ Deblank at seed " << GetParam();
  EXPECT_TRUE(std::includes(hybrid.begin(), hybrid.end(), deblank.begin(),
                            deblank.end()))
      << "Deblank ⊄ Hybrid at seed " << GetParam();
}

TEST_P(MethodHierarchyProperty, TrivialAndDeblankStartsAgree) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  Partition a = HybridPartitionFrom(cg, DeblankPartition(cg));
  Partition b = HybridPartitionFrom(cg, TrivialPartition(cg.graph()));
  EXPECT_EQ(AlignSet(cg, a), AlignSet(cg, b)) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, MethodHierarchyProperty,
                         ::testing::Range<uint64_t>(1, 11));

TEST(HybridTest, SinkUrisMergeDeliberately) {
  // The known failure mode (§5.1): URIs used only as predicates have empty
  // out-neighborhoods, so hybrid merges unaligned sinks across versions.
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  b1.AddLiteralTriple("ex:s", "ex:only-in-v1", "x");
  GraphBuilder b2(dict);
  b2.AddLiteralTriple("ex:s", "ex:only-in-v2", "x");
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);
  Partition p = HybridPartition(cg);
  NodeId p1 = cg.graph().FindUri("ex:only-in-v1");
  NodeId p2 = cg.graph().FindUri("ex:only-in-v2");
  EXPECT_EQ(p.ColorOf(p1), p.ColorOf(p2));
}

TEST(DeblankTest, DistinguishesBlanksByContents) {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  {
    NodeId s = b1.AddUri("ex:s");
    NodeId p = b1.AddUri("ex:p");
    NodeId rec = b1.AddBlank("r1");
    b1.AddTriple(s, p, rec);
    b1.AddTriple(rec, b1.AddUri("ex:k"), b1.AddLiteral("v1"));
  }
  GraphBuilder b2(dict);
  {
    NodeId s = b2.AddUri("ex:s");
    NodeId p = b2.AddUri("ex:p");
    NodeId rec = b2.AddBlank("r2");
    b2.AddTriple(s, p, rec);
    b2.AddTriple(rec, b2.AddUri("ex:k"), b2.AddLiteral("v2"));  // different
  }
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);
  Partition p = DeblankPartition(cg);
  EXPECT_NE(p.ColorOf(cg.graph().FindBlank("r1")),
            p.ColorOf(cg.graph().FindBlank("r2")));
}

}  // namespace
}  // namespace rdfalign
