// Pins JsonEscape (service/json.h) against RFC 8259: every control
// character below 0x20 must come out escaped (named escapes for the
// common ones, \u00xx for the rest), quotes and backslashes must be
// escaped, and everything else — including non-ASCII UTF-8 bytes — must
// pass through untouched. Graph literals are arbitrary bytes and flow
// into daemon JSON bodies (stream verb pair lists, error fields), so an
// unescaped control character would emit invalid JSON.

#include "service/json.h"

#include <gtest/gtest.h>

#include <string>

namespace rdfalign::service {
namespace {

TEST(JsonEscapeTest, NamedEscapes) {
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb"), "a\\nb");
  EXPECT_EQ(JsonEscape("a\rb"), "a\\rb");
  EXPECT_EQ(JsonEscape("a\tb"), "a\\tb");
}

TEST(JsonEscapeTest, EveryControlCharacterIsEscaped) {
  for (int c = 0; c < 0x20; ++c) {
    const std::string in(1, static_cast<char>(c));
    const std::string out = JsonEscape(in);
    // Whatever the spelling, no raw control byte may survive.
    for (char byte : out) {
      EXPECT_GE(static_cast<unsigned char>(byte), 0x20u)
          << "control char " << c << " leaked through as raw byte";
    }
    EXPECT_GE(out.size(), 2u) << "control char " << c << " not escaped";
  }
  // The \u00xx spelling for characters without a named escape.
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonEscape(std::string(1, '\x1f')), "\\u001f");
  EXPECT_EQ(JsonEscape(std::string(1, '\0')), "\\u0000");
}

TEST(JsonEscapeTest, PrintableAndUtf8PassThrough) {
  EXPECT_EQ(JsonEscape("plain ascii 123 {}[]"), "plain ascii 123 {}[]");
  // Multi-byte UTF-8 (é, 0xC3 0xA9) is valid in JSON strings unescaped.
  EXPECT_EQ(JsonEscape("caf\xc3\xa9"), "caf\xc3\xa9");
  // 0x7f (DEL) is not a JSON control character; it passes through.
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
}

TEST(JsonEscapeTest, MixedLiteralRoundTripsThroughJsonFindString) {
  // A literal of the shape the stream verbs emit: quotes, backslashes,
  // and tabs intermixed. JsonFindString must recover the original.
  const std::string lex = "say \"hi\"\tc:\\path";
  const std::string json = "{\"lex\": \"" + JsonEscape(lex) + "\"}";
  EXPECT_EQ(JsonFindString(json, "lex", ""), lex);
}

}  // namespace
}  // namespace rdfalign::service
