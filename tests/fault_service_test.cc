// Fault-injected service coverage: torn frames and mid-frame hangups on
// every verb (including `stream push`'s two-frame shape) must never crash
// a worker and must always surface in the transport counters; deadlines
// evict stalled peers; the connection cap sheds load cleanly; parked
// stream sessions resume bit-identically; the client retries idempotent
// verbs after eviction.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "service/client.h"
#include "service/graph_source.h"
#include "service/protocol.h"
#include "service/server.h"
#include "service/verbs.h"
#include "store/update_fragment.h"
#include "util/fault_injector.h"

namespace rdfalign::service {
namespace {

std::string ScratchPrefix() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "rdfalign_fault_" + info->name();
}

void SleepMs(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// A raw TCP connection for sending deliberately broken byte sequences.
class RawConn {
 public:
  explicit RawConn(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }
  ~RawConn() { Close(); }

  bool ok() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  void SendBytes(const void* data, size_t n) {
    (void)!::send(fd_, data, n, MSG_NOSIGNAL);
  }

  /// A frame header announcing `claim` bytes, followed by only `actual`
  /// payload bytes — a torn frame once the connection closes.
  void SendTornFrame(uint32_t claim, size_t actual) {
    unsigned char header[4] = {
        static_cast<unsigned char>(claim & 0xff),
        static_cast<unsigned char>((claim >> 8) & 0xff),
        static_cast<unsigned char>((claim >> 16) & 0xff),
        static_cast<unsigned char>((claim >> 24) & 0xff),
    };
    SendBytes(header, sizeof(header));
    const std::string junk(actual, 'x');
    if (actual > 0) SendBytes(junk.data(), junk.size());
  }

  void SendRequest(const std::vector<std::string>& tokens) {
    const std::string payload = EncodeRequest(tokens);
    SendTornFrame(static_cast<uint32_t>(payload.size()), 0);
    SendBytes(payload.data(), payload.size());
  }

  void Close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

 private:
  int fd_ = -1;
};

struct StreamFiles {
  std::string v1, v2, v3, u1, u2;
};

StreamFiles MakeStreamChain(const std::string& prefix) {
  DirectGraphSource direct;
  EXPECT_EQ(ExecuteVerb({"gen", prefix, "--scale=0.02", "--versions=3"},
                        &direct, false)
                .exit_code,
            0);
  StreamFiles f;
  f.v1 = prefix + "1.snap";
  f.v2 = prefix + "2.snap";
  f.v3 = prefix + "3.snap";
  for (int i = 1; i <= 3; ++i) {
    const std::string n = std::to_string(i);
    EXPECT_EQ(ExecuteVerb({"build", prefix + n + ".nt", prefix + n + ".snap"},
                          &direct, false)
                  .exit_code,
              0);
  }
  f.u1 = prefix + "_1.upd";
  f.u2 = prefix + "_2.upd";
  EXPECT_EQ(
      ExecuteVerb({"updates", f.v1, f.v2, f.u1, "--seq=1"}, &direct, false)
          .exit_code,
      0);
  EXPECT_EQ(
      ExecuteVerb({"updates", f.v2, f.v3, f.u2, "--seq=2"}, &direct, false)
          .exit_code,
      0);
  return f;
}

void RemoveStreamChain(const std::string& prefix, const StreamFiles& f) {
  for (int i = 1; i <= 3; ++i) {
    const std::string n = std::to_string(i);
    std::remove((prefix + n + ".nt").c_str());
    std::remove((prefix + n + ".snap").c_str());
  }
  std::remove(f.u1.c_str());
  std::remove(f.u2.c_str());
}

class FaultServiceTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    options.port = 0;
    server_ = std::make_unique<Server>(options);
    Status st = server_->Start();
    ASSERT_TRUE(st.ok()) << st.ToString();
    ASSERT_GT(server_->port(), 0);
  }

  Client Connect(const ClientOptions& opts = {}) {
    Result<Client> client =
        Client::Connect("127.0.0.1", server_->port(), opts);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  /// The daemon's transport counters, via `stats --json` over a fresh
  /// connection.
  std::string StatsJson() {
    Client client = Connect();
    Result<ClientResponse> resp = client.Call({"stats", "--json"});
    EXPECT_TRUE(resp.ok()) << resp.status().ToString();
    return resp.ok() ? resp->body : "";
  }

  void TearDown() override {
    FaultInjector::Reset();
    server_.reset();
  }

  std::unique_ptr<Server> server_;
};

TEST_F(FaultServiceTest, TornFramesOnEveryVerbNeverCrashAWorker) {
  const std::string prefix = ScratchPrefix();
  const StreamFiles f = MakeStreamChain(prefix);
  StartServer();

  // Every verb: a request frame announcing more bytes than ever arrive,
  // then hangup mid-frame. The worker must drop the connection, count a
  // protocol error, and serve the next client.
  const std::vector<std::vector<std::string>> verbs = {
      {"info", f.v1},          {"align", f.v1, f.v2},
      {"diff", f.v1, f.v2, prefix + ".delta"},
      {"cache", "stats"},      {"stats"},
      {"stream", "open", f.v1, f.v1},
  };
  size_t torn = 0;
  for (const auto& tokens : verbs) {
    const std::string payload = EncodeRequest(tokens);
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.ok());
    conn.SendTornFrame(static_cast<uint32_t>(payload.size() + 64),
                       payload.size());
    conn.Close();
    ++torn;
  }
  // `stream push` is the two-frame shape: a complete request frame, then
  // a torn payload frame.
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.ok());
    conn.SendRequest({"stream", "open", f.v1, f.v1});
    conn.SendRequest({"stream", "push"});
    conn.SendTornFrame(1 << 20, 100);
    conn.Close();
    ++torn;
  }
  // An oversized length prefix is rejected as malformed, not allocated.
  {
    RawConn conn(server_->port());
    ASSERT_TRUE(conn.ok());
    conn.SendTornFrame(kMaxFrameBytes + 1, 0);
    conn.Close();
    ++torn;
  }

  // The daemon is alive and every tear was counted. The count is polled:
  // workers observe the hangup asynchronously.
  std::string stats;
  const std::string want =
      "\"protocol_errors\": " + std::to_string(torn);
  for (int i = 0; i < 100; ++i) {
    stats = StatsJson();
    if (stats.find(want) != std::string::npos) break;
    SleepMs(20);
  }
  EXPECT_NE(stats.find(want), std::string::npos) << stats;

  // ... and real requests still round-trip.
  Client client = Connect();
  Result<ClientResponse> resp = client.Call({"info", f.v1});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->exit_code, 0);
  RemoveStreamChain(prefix, f);
  std::remove((prefix + ".delta").c_str());
}

TEST_F(FaultServiceTest, ShortSocketWritesRoundTripTransparently) {
  const std::string prefix = ScratchPrefix();
  const StreamFiles f = MakeStreamChain(prefix);
  StartServer();
  Client client = Connect();
  Result<ClientResponse> baseline = client.Call({"info", f.v1, "--json"});
  ASSERT_TRUE(baseline.ok());

  // Force 1-byte transfers at scattered positions on both sides of the
  // wire (the injector is process-wide); the frame loops must reassemble.
  ASSERT_TRUE(FaultInjector::ArmFromSpec(
                  "socket.write@1=short;socket.write@3=short;"
                  "socket.write@5=short;socket.read@2=short;"
                  "socket.read@4=short;socket.read@6=eintr3")
                  .ok());
  Result<ClientResponse> shorted = client.Call({"info", f.v1, "--json"});
  FaultInjector::Reset();
  ASSERT_TRUE(shorted.ok()) << shorted.status().ToString();
  EXPECT_EQ(shorted->exit_code, 0);
  EXPECT_EQ(shorted->body, baseline->body);
  RemoveStreamChain(prefix, f);
}

TEST_F(FaultServiceTest, DeadlineEvictsStalledPeers) {
  ServerOptions options;
  options.io_timeout_ms = 150;
  StartServer(options);

  // A peer that sends half a frame and stalls is evicted at the deadline.
  RawConn stalled(server_->port());
  ASSERT_TRUE(stalled.ok());
  stalled.SendTornFrame(64, 4);
  std::string stats;
  for (int i = 0; i < 100; ++i) {
    stats = StatsJson();
    if (stats.find("\"io_timeouts\": 0") == std::string::npos) break;
    SleepMs(20);
  }
  EXPECT_EQ(stats.find("\"io_timeouts\": 0"), std::string::npos) << stats;

  // A fast client on the same daemon is unaffected.
  Client client = Connect();
  Result<ClientResponse> resp = client.Call({"cache", "stats"});
  ASSERT_TRUE(resp.ok());
  EXPECT_EQ(resp->exit_code, 0);
}

TEST_F(FaultServiceTest, ConnectionCapShedsLoadCleanly) {
  ServerOptions options;
  options.max_conns = 1;
  options.worker_threads = 2;
  StartServer(options);

  Client first = Connect();
  ASSERT_TRUE(first.Call({"cache", "stats"}).ok());

  // The connection over the cap gets a clean error response, not a hang
  // or a reset. The daemon writes the shed envelope proactively, so read
  // it off a raw socket without sending anything first.
  RawConn second(server_->port());
  ASSERT_TRUE(second.ok());
  std::string envelope;
  Result<bool> got = ReadFrame(second.fd(), &envelope, 5000);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  ASSERT_TRUE(*got);
  EXPECT_NE(envelope.find("\"exit_code\": 1"), std::string::npos)
      << envelope;
  EXPECT_NE(envelope.find("connection limit"), std::string::npos)
      << envelope;
  std::string body;
  Result<bool> got_body = ReadFrame(second.fd(), &body, 5000);
  ASSERT_TRUE(got_body.ok() && *got_body);
  EXPECT_TRUE(body.empty());
  second.Close();

  // The first connection keeps working, and the shed was counted.
  Result<ClientResponse> alive = first.Call({"stats", "--json"});
  ASSERT_TRUE(alive.ok());
  EXPECT_EQ(alive->exit_code, 0);
  EXPECT_NE(alive->body.find("\"load_shed\": 1"), std::string::npos)
      << alive->body;
}

TEST_F(FaultServiceTest, ParkedSessionResumesBitIdentically) {
  const std::string prefix = ScratchPrefix();
  const StreamFiles f = MakeStreamChain(prefix);
  ServerOptions options;
  options.session_linger_ms = 60000;
  StartServer(options);

  // Session A: open, push fragment 1, then vanish without closing.
  std::string token;
  std::string push1_body;
  {
    Client a = Connect();
    Result<ClientResponse> open =
        a.Call({"stream", "open", f.v1, f.v1, "--json"});
    ASSERT_TRUE(open.ok());
    ASSERT_EQ(open->exit_code, 0) << open->error;
    const size_t key = open->body.find("\"session\": \"");
    ASSERT_NE(key, std::string::npos) << open->body;
    const size_t start = key + std::strlen("\"session\": \"");
    token = open->body.substr(start, open->body.find('"', start) - start);
    ASSERT_EQ(token.rfind("st-", 0), 0u) << token;

    Result<std::string> frag1 = store::ReadFileBytes(f.u1);
    ASSERT_TRUE(frag1.ok());
    Result<ClientResponse> push =
        a.CallWithPayload({"stream", "push", "--json"}, *frag1);
    ASSERT_TRUE(push.ok());
    ASSERT_EQ(push->exit_code, 0) << push->error;
    push1_body = push->body;
  }  // connection drops here; the server parks the session

  // Session B: resume by token (polled — parking is asynchronous).
  Client b = Connect();
  Result<ClientResponse> resumed = Status::IOError("unset");
  for (int i = 0; i < 100; ++i) {
    resumed = b.Call({"stream", "resume", token, "--json"});
    if (resumed.ok() && resumed->exit_code == 0) break;
    SleepMs(20);
  }
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  ASSERT_EQ(resumed->exit_code, 0) << resumed->error;
  EXPECT_NE(resumed->body.find("\"last_sequence\": 1"), std::string::npos)
      << resumed->body;

  // Re-pushing the already-applied fragment 1 replays the original
  // response bit-identically — the aligner is not touched twice.
  Result<std::string> frag1 = store::ReadFileBytes(f.u1);
  ASSERT_TRUE(frag1.ok());
  Result<ClientResponse> replay =
      b.CallWithPayload({"stream", "push", "--json"}, *frag1);
  ASSERT_TRUE(replay.ok());
  ASSERT_EQ(replay->exit_code, 0) << replay->error;
  EXPECT_EQ(replay->body, push1_body);

  // The stream continues where it left off and still matches the batch
  // alignment of the final version.
  Result<std::string> frag2 = store::ReadFileBytes(f.u2);
  ASSERT_TRUE(frag2.ok());
  Result<ClientResponse> push2 =
      b.CallWithPayload({"stream", "push", "--json"}, *frag2);
  ASSERT_TRUE(push2.ok());
  ASSERT_EQ(push2->exit_code, 0) << push2->error;
  Result<ClientResponse> check =
      b.Call({"stream", "check", f.v3, "--json"});
  ASSERT_TRUE(check.ok());
  EXPECT_EQ(check->exit_code, 0) << check->error;
  EXPECT_NE(check->body.find("\"equivalent\": true"), std::string::npos);

  const std::string stats = StatsJson();
  EXPECT_NE(stats.find("\"sessions_parked\": 1"), std::string::npos)
      << stats;
  EXPECT_NE(stats.find("\"sessions_resumed\": 1"), std::string::npos)
      << stats;
  RemoveStreamChain(prefix, f);
}

TEST_F(FaultServiceTest, LingerDeadlineExpiresParkedSessions) {
  const std::string prefix = ScratchPrefix();
  const StreamFiles f = MakeStreamChain(prefix);
  ServerOptions options;
  options.session_linger_ms = 50;
  StartServer(options);

  std::string token;
  {
    Client a = Connect();
    Result<ClientResponse> open =
        a.Call({"stream", "open", f.v1, f.v1, "--json"});
    ASSERT_TRUE(open.ok());
    ASSERT_EQ(open->exit_code, 0) << open->error;
    const size_t key = open->body.find("\"session\": \"");
    ASSERT_NE(key, std::string::npos);
    const size_t start = key + std::strlen("\"session\": \"");
    token = open->body.substr(start, open->body.find('"', start) - start);
  }
  // Wait until the daemon has actually parked the session (the worker
  // observes the hangup asynchronously), then outlive the linger window.
  std::string parked_stats;
  for (int i = 0; i < 100; ++i) {
    parked_stats = StatsJson();
    if (parked_stats.find("\"sessions_parked\": 1") != std::string::npos) {
      break;
    }
    SleepMs(20);
  }
  ASSERT_NE(parked_stats.find("\"sessions_parked\": 1"), std::string::npos)
      << parked_stats;
  SleepMs(200);

  // Any request sweeps expired sessions; the resume must fail cleanly.
  Client b = Connect();
  Result<ClientResponse> resumed = b.Call({"stream", "resume", token});
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->exit_code, 1);
  EXPECT_NE(resumed->error.find("no resumable session"), std::string::npos)
      << resumed->error;
  const std::string stats = StatsJson();
  EXPECT_NE(stats.find("\"sessions_expired\": 1"), std::string::npos)
      << stats;
  RemoveStreamChain(prefix, f);
}

TEST_F(FaultServiceTest, IdempotentClientRetriesAfterEviction) {
  const std::string prefix = ScratchPrefix();
  const StreamFiles f = MakeStreamChain(prefix);
  ServerOptions options;
  options.io_timeout_ms = 100;
  StartServer(options);

  ClientOptions opts;
  opts.retries = 3;
  opts.retry_backoff_ms = 10;
  Client client = Connect(opts);
  ASSERT_TRUE(client.Call({"info", f.v1}).ok());

  // Outlive the idle deadline: the daemon evicts this connection. The
  // idempotent retry path reconnects and re-sends transparently.
  SleepMs(400);
  Result<ClientResponse> resp = client.CallIdempotent({"info", f.v1});
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->exit_code, 0);
  RemoveStreamChain(prefix, f);
}

TEST_F(FaultServiceTest, ConnectRetriesRespectTheBudget) {
  // The `client.connect` failpoint fails every attempt before any real
  // dialing, so no listener is involved at all.
  ClientOptions opts;
  opts.retries = 2;
  opts.retry_backoff_ms = 1;
  opts.timeout_ms = 200;
  ASSERT_TRUE(FaultInjector::ArmFromSpec(
                  "client.connect@1=error:ETIMEDOUT;"
                  "client.connect@2=error:ETIMEDOUT;"
                  "client.connect@3=error:ETIMEDOUT")
                  .ok());
  Result<Client> client = Client::Connect("127.0.0.1", 1, opts);
  const uint64_t attempts = FaultInjector::Hits("client.connect");
  FaultInjector::Reset();
  ASSERT_FALSE(client.ok());
  EXPECT_NE(client.status().message().find("cannot connect"),
            std::string::npos)
      << client.status().ToString();
  // retries=2 means exactly three dial attempts, no more.
  EXPECT_EQ(attempts, 3u);
}

TEST_F(FaultServiceTest, BackoffAndIdempotencyContracts) {
  for (int attempt = 0; attempt < 12; ++attempt) {
    const int delay = RetryBackoffMs(100, attempt);
    EXPECT_GE(delay, 1) << attempt;
    EXPECT_LE(delay, 5000) << attempt;
  }
  for (const char* verb : {"info", "align", "cache", "stats"}) {
    EXPECT_TRUE(IsIdempotentVerb(verb)) << verb;
  }
  for (const char* verb : {"build", "patch", "diff", "gen", "stream"}) {
    EXPECT_FALSE(IsIdempotentVerb(verb)) << verb;
  }
}

}  // namespace
}  // namespace rdfalign::service
