// Snapshot store tests: round-trip fidelity (byte-identical re-save, graph
// equality, partition bit-identity through the store), shared-dictionary
// remapping, and rejection of corrupted / truncated / mismatched files.

#include "store/snapshot.h"

#include <cstddef>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/partition.h"
#include "core/refinement.h"
#include "rdf/merge.h"
#include "store/format.h"
#include "test_util.h"

namespace rdfalign {
namespace {

using store::LoadSnapshot;
using store::ReadSnapshotInfo;
using store::SnapshotLoadOptions;
using store::SnapshotLoadStats;
using store::WriteSnapshot;

/// Unique path under the test's temp dir.
std::string TempPath(const std::string& name) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  return ::testing::TempDir() + "rdfalign_store_" + info->name() + "_" +
         name;
}

std::vector<char> ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  EXPECT_TRUE(in) << path;
  std::vector<char> bytes(static_cast<size_t>(in.tellg()));
  in.seekg(0);
  in.read(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return bytes;
}

void WriteFileBytes(const std::string& path, const std::vector<char>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out) << path;
}

/// A graph exercising every label shape: URIs, plain literals, literals
/// with language tags and datatypes (folded labels), named and anonymous
/// blanks, and a node that is both subject and object.
TripleGraph MixedGraph(std::shared_ptr<Dictionary> dict = nullptr) {
  GraphBuilder b(std::move(dict));
  NodeId alice = b.AddUri("http://e/alice");
  NodeId bob = b.AddUri("http://e/bob");
  NodeId name = b.AddUri("http://e/name");
  NodeId knows = b.AddUri("http://e/knows");
  NodeId addr = b.AddBlank("addr");
  NodeId anon = b.AddBlank();
  b.AddTriple(alice, name, b.AddLiteral("Alice"));
  b.AddTriple(alice, name, b.AddLiteral("Alice@en"));
  b.AddTriple(alice, name,
              b.AddLiteral("42^^<http://www.w3.org/2001/XMLSchema#int>"));
  b.AddTriple(alice, knows, bob);
  b.AddTriple(bob, knows, alice);
  b.AddTriple(alice, b.AddUri("http://e/home"), addr);
  b.AddTriple(addr, name, b.AddLiteral("12 Main St"));
  b.AddTriple(bob, b.AddUri("http://e/home"), anon);
  return std::move(b.Build(true)).value();
}

TEST(SnapshotStoreTest, RoundTripsMixedGraph) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("mixed.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());

  SnapshotLoadStats stats;
  auto loaded = LoadSnapshot(path, nullptr, {}, &stats);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(LabeledGraphsEqual(g, *loaded));
  EXPECT_TRUE(stats.identity_term_map);
  EXPECT_GT(stats.file_bytes, 0u);
  std::remove(path.c_str());
}

// Regression: a graph with nodes but zero triples has empty array sections
// whose data() is nullptr; the writer must not confuse those with the
// streamed term-blob section (which is selected by index, not by pointer).
TEST(SnapshotStoreTest, RoundTripsNodesWithoutTriples) {
  GraphBuilder b;
  b.AddUri("http://e/orphan");
  b.AddLiteral("lonely");
  b.AddBlank("island");
  TripleGraph g = std::move(b.Build(true)).value();
  const std::string path = TempPath("no_triples.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  for (bool mmap : {false, true}) {
    SnapshotLoadOptions load;
    load.use_mmap = mmap;
    auto loaded = LoadSnapshot(path, nullptr, load);
    ASSERT_TRUE(loaded.ok()) << "mmap " << mmap << ": " << loaded.status();
    EXPECT_EQ(loaded->NumNodes(), 3u);
    EXPECT_EQ(loaded->NumEdges(), 0u);
    EXPECT_TRUE(LabeledGraphsEqual(g, *loaded));
  }
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, RoundTripsEmptyGraph) {
  GraphBuilder b;
  TripleGraph g = std::move(b.Build(true)).value();
  const std::string path = TempPath("empty.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumNodes(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
  EXPECT_TRUE(LabeledGraphsEqual(g, *loaded));
  std::remove(path.c_str());
}

// save(load(save(G))) is byte-identical to save(G): loading renumbers
// nothing, and saving a loaded graph reproduces the file — in both the
// front-coded default and the raw version-1 mode.
TEST(SnapshotStoreTest, ResaveIsByteIdentical) {
  for (bool compress : {true, false}) {
    const store::StoreWriteOptions write{.compress_dict = compress};
    for (uint64_t seed = 1; seed <= 10; ++seed) {
      testing::RandomGraphOptions options;
      options.seed = seed;
      TripleGraph g = testing::RandomGraph(options);
      const std::string path1 = TempPath("first.snap");
      const std::string path2 = TempPath("second.snap");
      ASSERT_TRUE(WriteSnapshot(g, path1, write).ok());
      auto loaded = LoadSnapshot(path1, nullptr);
      ASSERT_TRUE(loaded.ok()) << loaded.status();
      ASSERT_TRUE(WriteSnapshot(*loaded, path2, write).ok());
      EXPECT_EQ(ReadFileBytes(path1), ReadFileBytes(path2))
          << "seed " << seed << " compress " << compress;
      std::remove(path1.c_str());
      std::remove(path2.c_str());
    }
  }
}

// The point of front coding: on prefix-heavy graphs (IRIs share
// namespaces by construction) the compressed snapshot is strictly
// smaller than the raw one, and both load to the same graph.
TEST(SnapshotStoreTest, CompressedSnapshotIsSmaller) {
  testing::RandomGraphOptions options;
  options.seed = 3;
  options.uris = 40;
  options.edges = 120;
  TripleGraph g = testing::RandomGraph(options);
  const std::string compressed = TempPath("fc.snap");
  const std::string raw = TempPath("raw.snap");
  ASSERT_TRUE(WriteSnapshot(g, compressed).ok());
  ASSERT_TRUE(WriteSnapshot(g, raw, {.compress_dict = false}).ok());
  EXPECT_LT(ReadFileBytes(compressed).size(), ReadFileBytes(raw).size());
  auto from_fc = LoadSnapshot(compressed, nullptr);
  auto from_raw = LoadSnapshot(raw, nullptr);
  ASSERT_TRUE(from_fc.ok()) << from_fc.status();
  ASSERT_TRUE(from_raw.ok()) << from_raw.status();
  EXPECT_TRUE(LabeledGraphsEqual(*from_fc, *from_raw));
  std::remove(compressed.c_str());
  std::remove(raw.c_str());
}

TEST(SnapshotStoreTest, RandomGraphsRoundTripBothPaths) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    testing::RandomGraphOptions options;
    options.seed = seed;
    options.edges = 80;
    TripleGraph g = testing::RandomGraph(options);
    const std::string path = TempPath("rand.snap");
    ASSERT_TRUE(WriteSnapshot(g, path).ok());
    for (bool mmap : {false, true}) {
      SnapshotLoadOptions load;
      load.use_mmap = mmap;
      SnapshotLoadStats stats;
      auto loaded = LoadSnapshot(path, nullptr, load, &stats);
      ASSERT_TRUE(loaded.ok()) << "seed " << seed << " mmap " << mmap << ": "
                               << loaded.status();
      EXPECT_TRUE(LabeledGraphsEqual(g, *loaded))
          << "seed " << seed << " mmap " << mmap;
      EXPECT_EQ(stats.used_mmap, mmap);
    }
    std::remove(path.c_str());
  }
}

// A snapshot saved from a graph with a *shared* dictionary (its lex ids are
// sparse in that dictionary) still reloads equal, and loading two
// snapshots into one dictionary remaps the second transparently.
TEST(SnapshotStoreTest, SharedDictionaryRemapping) {
  auto [g1, g2] = testing::RandomEvolvingPair(7);
  const std::string path1 = TempPath("v1.snap");
  const std::string path2 = TempPath("v2.snap");
  ASSERT_TRUE(WriteSnapshot(g1, path1).ok());
  ASSERT_TRUE(WriteSnapshot(g2, path2).ok());

  auto dict = std::make_shared<Dictionary>();
  auto l1 = LoadSnapshot(path1, dict);
  ASSERT_TRUE(l1.ok()) << l1.status();
  SnapshotLoadStats stats2;
  auto l2 = LoadSnapshot(path2, dict, {}, &stats2);
  ASSERT_TRUE(l2.ok()) << l2.status();
  // The second load dedupes shared terms against the first.
  EXPECT_FALSE(stats2.identity_term_map);
  EXPECT_LT(stats2.terms_interned, l2->NumNodes() + 1);
  EXPECT_TRUE(LabeledGraphsEqual(g1, *l1));
  EXPECT_TRUE(LabeledGraphsEqual(g2, *l2));
  // Shared dictionary => the pair is alignable (merge requires one dict).
  EXPECT_TRUE(CombinedGraph::Build(*l1, *l2).ok());
  std::remove(path1.c_str());
  std::remove(path2.c_str());
}

// The acceptance property: a graph round-tripped through the store yields
// a bit-identical bisimulation partition.
TEST(SnapshotStoreTest, PartitionBitIdenticalThroughStore) {
  auto [g1, g2] = testing::RandomEvolvingPair(11);
  CombinedGraph cg = testing::Combine(g1, g2);
  const std::string path = TempPath("combined.snap");
  // The combined graph is a plain triple graph (duplicate labels across
  // sides); snapshot it directly.
  ASSERT_TRUE(WriteSnapshot(cg.graph(), path).ok());
  for (bool mmap : {false, true}) {
    SnapshotLoadOptions load;
    load.use_mmap = mmap;
    auto loaded = LoadSnapshot(path, nullptr, load);
    ASSERT_TRUE(loaded.ok()) << loaded.status();

    std::vector<NodeId> all(cg.graph().NumNodes());
    for (NodeId i = 0; i < all.size(); ++i) all[i] = i;
    Partition original =
        BisimRefineFixpoint(cg.graph(), LabelPartition(cg.graph()), all);
    Partition reloaded =
        BisimRefineFixpoint(*loaded, LabelPartition(*loaded), all);
    EXPECT_EQ(original.colors(), reloaded.colors()) << "mmap " << mmap;
  }
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, InfoReportsCounts) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("info.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kFormatVersionFrontCoded);
  EXPECT_EQ(info->num_nodes, g.NumNodes());
  EXPECT_EQ(info->num_triples, g.NumEdges());
  EXPECT_EQ(info->sections.size(), store::kNumSectionsV2);
  std::remove(path.c_str());
}

// The --no-dict-compress escape hatch writes the raw version-1 layout.
TEST(SnapshotStoreTest, RawModeWritesVersion1) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("raw.snap");
  ASSERT_TRUE(WriteSnapshot(g, path, {.compress_dict = false}).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok()) << info.status();
  EXPECT_EQ(info->version, store::kFormatVersion);
  EXPECT_EQ(info->sections.size(), store::kNumSections);
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_TRUE(LabeledGraphsEqual(g, *loaded));
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, RejectsNonSnapshot) {
  const std::string path = TempPath("not_a.snap");
  WriteFileBytes(path, {'h', 'e', 'l', 'l', 'o', ' ', 'r', 'd', 'f', '!'});
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_FALSE(loaded.ok());
  // Too short for a header: reported as truncation; a full-size non-
  // snapshot file would be InvalidArgument (checked below with junk).
  EXPECT_TRUE(loaded.status().IsCorruption());

  std::vector<char> junk(512, 'x');
  WriteFileBytes(path, junk);
  loaded = LoadSnapshot(path, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument());
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, RejectsVersionMismatch) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("version.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  std::vector<char> bytes = ReadFileBytes(path);
  // The version field sits right after the 8-byte magic.
  bytes[8] = 99;
  WriteFileBytes(path, bytes);
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotSupported()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("version"), std::string::npos);
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, RejectsTruncation) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("trunc.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  std::vector<char> bytes = ReadFileBytes(path);
  for (size_t keep : {size_t{4}, size_t{100}, bytes.size() - 1}) {
    std::vector<char> cut(bytes.begin(),
                          bytes.begin() + static_cast<ptrdiff_t>(keep));
    WriteFileBytes(path, cut);
    for (bool mmap : {false, true}) {
      SnapshotLoadOptions load;
      load.use_mmap = mmap;
      auto loaded = LoadSnapshot(path, nullptr, load);
      ASSERT_FALSE(loaded.ok()) << "keep " << keep << " mmap " << mmap;
      EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
    }
  }
  std::remove(path.c_str());
}

// Flipping any single byte of the header, section table, or a section
// payload is caught — by the header or a section checksum, or by
// structural validation. (Bytes in the alignment padding between sections
// are semantically dead and not covered; the sampler skips them.)
TEST(SnapshotStoreTest, RejectsBitFlips) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("flip.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  const auto meaningful = [&info](size_t pos) {
    // Header plus section table — sized by the file's own section count,
    // so the sweep covers the v2 prefix-lens table entry too.
    if (pos < sizeof(store::SnapshotHeader) +
                  info->sections.size() * sizeof(store::SectionEntry)) {
      return true;
    }
    for (const auto& s : info->sections) {
      if (pos >= s.offset && pos < s.offset + s.size) return true;
    }
    return false;
  };
  const std::vector<char> bytes = ReadFileBytes(path);
  // Every 7th byte keeps the test fast while hitting the header, the
  // table, and every section.
  size_t flips = 0;
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    if (!meaningful(pos)) continue;
    ++flips;
    std::vector<char> flipped = bytes;
    flipped[pos] = static_cast<char>(flipped[pos] ^ 0x40);
    WriteFileBytes(path, flipped);
    auto loaded = LoadSnapshot(path, nullptr);
    EXPECT_FALSE(loaded.ok()) << "flip at byte " << pos;
  }
  EXPECT_GT(flips, 50u);
  std::remove(path.c_str());
}

/// Overwrites `len` bytes at `byte_offset` within section `sec_index`,
/// then recomputes the section checksum and the header checksum so the
/// file models a deliberately crafted snapshot (all checksums match)
/// rather than bit rot — only structural validation can reject it.
void PatchBytesWithValidChecksums(std::vector<char>& bytes,
                                  const store::SnapshotInfo& info,
                                  size_t sec_index, size_t byte_offset,
                                  const void* data, size_t len) {
  const auto& sec = info.sections[sec_index];
  std::memcpy(bytes.data() + sec.offset + byte_offset, data, len);
  const uint64_t sec_checksum =
      store::Checksum64(bytes.data() + sec.offset, sec.size);
  const size_t entry_pos = sizeof(store::SnapshotHeader) +
                           sec_index * sizeof(store::SectionEntry) +
                           offsetof(store::SectionEntry, checksum);
  std::memcpy(bytes.data() + entry_pos, &sec_checksum, sizeof(sec_checksum));
  // Header checksum covers header + table with its own field zeroed.
  const size_t hc_pos = offsetof(store::SnapshotHeader, header_checksum);
  const uint64_t zero = 0;
  std::memcpy(bytes.data() + hc_pos, &zero, sizeof(zero));
  const uint64_t hc = store::Checksum64(
      bytes.data(), sizeof(store::SnapshotHeader) +
                        info.sections.size() * sizeof(store::SectionEntry));
  std::memcpy(bytes.data() + hc_pos, &hc, sizeof(hc));
}

void PatchU64WithValidChecksums(std::vector<char>& bytes,
                                const store::SnapshotInfo& info,
                                size_t sec_index, uint64_t entry_index,
                                uint64_t value) {
  PatchBytesWithValidChecksums(bytes, info, sec_index,
                               entry_index * sizeof(uint64_t), &value,
                               sizeof(value));
}

// Regression: an offsets entry pointing far past its payload while the
// array endpoints stay plausible (out_offsets = [0, HUGE, ..., e]) must be
// rejected before any entry is used to index triples/out_pairs/in_subjects
// — previously the consistency loop read out of bounds at i=0 because the
// monotone check only ran one step ahead.
TEST(SnapshotStoreTest, RejectsOutOfBoundsOffsetEntries) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("oob_offsets.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  ASSERT_GE(g.NumNodes(), 2u);
  const std::vector<char> bytes = ReadFileBytes(path);
  // Section index 5 = out_offsets, 7 = in_offsets.
  for (size_t sec_index : {size_t{5}, size_t{7}}) {
    std::vector<char> crafted = bytes;
    PatchU64WithValidChecksums(crafted, *info, sec_index, 1,
                               uint64_t{1} << 40);
    WriteFileBytes(path, crafted);
    for (bool mmap : {false, true}) {
      for (bool verify : {false, true}) {
        SnapshotLoadOptions load;
        load.use_mmap = mmap;
        load.verify_checksums = verify;
        auto loaded = LoadSnapshot(path, nullptr, load);
        ASSERT_FALSE(loaded.ok())
            << "section " << sec_index << " mmap " << mmap;
        EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
        EXPECT_NE(loaded.status().message().find("not monotonic"),
                  std::string::npos)
            << loaded.status();
      }
    }
  }
  std::remove(path.c_str());
}

// Crafted front-coded geometry (checksums recomputed, so only structural
// validation can object) is rejected with Corruption before any blob byte
// is interpreted. Section index 9 = term_prefix_lens in a v2 snapshot.
TEST(SnapshotStoreTest, RejectsCraftedFrontCodedPrefixTable) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("fc_prefix.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  ASSERT_EQ(info->version, store::kFormatVersionFrontCoded);
  ASSERT_EQ(info->sections.size(), store::kNumSectionsV2);
  ASSERT_GE(info->num_terms, 2u);
  const std::vector<char> bytes = ReadFileBytes(path);

  // A restart term (index 0) with a nonzero prefix length.
  {
    std::vector<char> crafted = bytes;
    const uint32_t bogus = 1;
    PatchBytesWithValidChecksums(crafted, *info, /*sec_index=*/9,
                                 /*byte_offset=*/0, &bogus, sizeof(bogus));
    WriteFileBytes(path, crafted);
    auto loaded = LoadSnapshot(path, nullptr);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
    EXPECT_NE(loaded.status().message().find("restart term"),
              std::string::npos)
        << loaded.status();
  }
  // A prefix length longer than the previous term can supply.
  {
    std::vector<char> crafted = bytes;
    const uint32_t bogus = 0x10000;
    PatchBytesWithValidChecksums(crafted, *info, /*sec_index=*/9,
                                 /*byte_offset=*/sizeof(uint32_t), &bogus,
                                 sizeof(bogus));
    WriteFileBytes(path, crafted);
    auto loaded = LoadSnapshot(path, nullptr);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
    EXPECT_NE(loaded.status().message().find("prefix longer"),
              std::string::npos)
        << loaded.status();
  }
  // Checksums-off loads must reject both the same way.
  {
    std::vector<char> crafted = bytes;
    const uint32_t bogus = 7;
    PatchBytesWithValidChecksums(crafted, *info, /*sec_index=*/9,
                                 /*byte_offset=*/0, &bogus, sizeof(bogus));
    WriteFileBytes(path, crafted);
    SnapshotLoadOptions load;
    load.verify_checksums = false;
    auto loaded = LoadSnapshot(path, nullptr, load);
    ASSERT_FALSE(loaded.ok());
    EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  }
  std::remove(path.c_str());
}

// Crafted suffix-offset tables: the restart-block structure is intact but
// the offsets no longer span the blob / are not monotonic.
TEST(SnapshotStoreTest, RejectsCraftedFrontCodedOffsets) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("fc_offsets.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  ASSERT_GE(info->num_terms, 2u);
  const std::vector<char> bytes = ReadFileBytes(path);
  // Section index 0 = term_offsets (suffix offsets in v2). Entry 1 far
  // past the blob breaks the span-and-monotonic invariant.
  std::vector<char> crafted = bytes;
  PatchU64WithValidChecksums(crafted, *info, /*sec_index=*/0, 1,
                             uint64_t{1} << 40);
  WriteFileBytes(path, crafted);
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  std::remove(path.c_str());
}

// Crafted blob bytes that decode to a non-ascending term sequence: the
// geometry is untouched, so only the strict-ascending decode check can
// reject the file (sorted order is what makes resave byte-identical).
// Patching term 0's bytes would change every shared prefix head with it
// and keep the order — the divergence byte of term 1 (the first byte of
// its own suffix) is the one the order hinges on.
TEST(SnapshotStoreTest, RejectsCraftedNonAscendingTerms) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("fc_order.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  ASSERT_GE(info->num_terms, 2u);
  std::vector<char> bytes = ReadFileBytes(path);
  // Section index 0 = suffix offsets, 1 = term_blob. Term 1's suffix
  // starts at suffix_offsets[1]; forcing its first byte to 0x00 makes the
  // decoded term 1 sort before term 0 (MixedGraph's smallest two terms
  // diverge at their suffix byte; neither is a prefix of the other).
  uint64_t suffix_start = 0;
  std::memcpy(&suffix_start,
              bytes.data() + info->sections[0].offset + sizeof(uint64_t),
              sizeof(suffix_start));
  const unsigned char bogus = 0x00;
  PatchBytesWithValidChecksums(bytes, *info, /*sec_index=*/1,
                               static_cast<size_t>(suffix_start), &bogus,
                               sizeof(bogus));
  WriteFileBytes(path, bytes);
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  EXPECT_NE(loaded.status().message().find("ascending"), std::string::npos)
      << loaded.status();
  std::remove(path.c_str());
}

// The buffered loader validates the header prefix before allocating
// anything file-sized: a junk file inflated to tens of gigabytes (sparse,
// so cheap to create) must be rejected from its first bytes, not buffered.
TEST(SnapshotStoreTest, RejectsHugeJunkFileWithoutBuffering) {
  const std::string path = TempPath("sparse_junk.snap");
  WriteFileBytes(path, std::vector<char>(512, 'x'));
  std::error_code ec;
  std::filesystem::resize_file(path, uint64_t{1} << 35, ec);  // 32 GiB
  ASSERT_FALSE(ec) << ec.message();
  auto loaded = LoadSnapshot(path, nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsInvalidArgument()) << loaded.status();
  std::remove(path.c_str());
}

// A directory "opens" as an ifstream on Linux; loading one must fail with
// a Status instead of an unbounded allocation or a crash.
TEST(SnapshotStoreTest, DirectoryPathIsError) {
  const std::string dir = ::testing::TempDir();
  for (bool mmap : {false, true}) {
    SnapshotLoadOptions load;
    load.use_mmap = mmap;
    auto loaded = LoadSnapshot(dir, nullptr, load);
    ASSERT_FALSE(loaded.ok()) << "mmap " << mmap;
    EXPECT_TRUE(loaded.status().IsIOError()) << loaded.status();
  }
  auto info = ReadSnapshotInfo(dir);
  ASSERT_FALSE(info.ok());
  EXPECT_TRUE(info.status().IsIOError()) << info.status();
}

// With checksums off, structural validation alone still rejects files
// whose arrays would be memory-unsafe to adopt.
TEST(SnapshotStoreTest, StructuralValidationWithoutChecksums) {
  TripleGraph g = MixedGraph();
  const std::string path = TempPath("struct.snap");
  ASSERT_TRUE(WriteSnapshot(g, path).ok());
  auto info = ReadSnapshotInfo(path);
  ASSERT_TRUE(info.ok());
  // Corrupt a triple's subject id (section 5 = triples) to an out-of-range
  // node, leaving everything else intact.
  std::vector<char> bytes = ReadFileBytes(path);
  const auto& triples_sec = info->sections[4];
  ASSERT_EQ(static_cast<uint32_t>(triples_sec.id), 5u);
  uint32_t bogus = 0x7fffffff;
  std::memcpy(bytes.data() + triples_sec.offset, &bogus, sizeof(bogus));
  WriteFileBytes(path, bytes);
  SnapshotLoadOptions load;
  load.verify_checksums = false;
  auto loaded = LoadSnapshot(path, nullptr, load);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status();
  std::remove(path.c_str());
}

TEST(SnapshotStoreTest, MissingFileIsIOError) {
  auto loaded = LoadSnapshot(TempPath("does_not_exist.snap"), nullptr);
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsIOError());
}

}  // namespace
}  // namespace rdfalign
