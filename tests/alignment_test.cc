#include "core/alignment.h"

#include <gtest/gtest.h>

#include "core/deblank.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(ClassSidesTest, ClassifiesClasses) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = TrivialPartition(cg.graph());
  auto sides = ComputeClassSides(cg, p);
  // "ex:w" appears on both sides; "ex:u" only in the source; blanks are
  // singletons.
  NodeId w = cg.graph().FindUri("ex:w");
  NodeId u = cg.graph().FindUri("ex:u");
  EXPECT_EQ(sides[p.ColorOf(w)], ClassSides::kBoth);
  EXPECT_EQ(sides[p.ColorOf(u)], ClassSides::kSourceOnly);
}

TEST(UnalignedTest, TrivialLeavesBlanksAndRenamedUrisUnaligned) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = TrivialPartition(cg.graph());
  auto unaligned = UnalignedNodes(cg, p);
  // u, v, and all 5 blanks are unaligned under trivial.
  EXPECT_EQ(unaligned.size(), 7u);
  auto un = UnalignedNonLiterals(cg, p);
  EXPECT_EQ(un.size(), 7u);  // no literal is unaligned in Fig. 3
}

TEST(EdgeAlignmentTest, SelfAlignmentWithTrivialIsIncomplete) {
  // Blank-touching edges cannot be aligned by the trivial method, so the
  // self-alignment ratio is below 1 — the Fig. 10 diagonal effect.
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = testing::Fig2Graph(dict);
  TripleGraph g2 = testing::Fig2Graph(dict);
  auto cg = testing::Combine(g1, g2);
  Partition trivial = TrivialPartition(cg.graph());
  EdgeAlignmentStats stats = ComputeEdgeAlignment(cg, trivial);
  EXPECT_LT(stats.Ratio(), 1.0);
  EXPECT_GT(stats.Ratio(), 0.0);
  // Identical non-blank edges count once.
  EXPECT_LT(stats.total_edges, g1.NumEdges() + g2.NumEdges());
}

TEST(EdgeAlignmentTest, SelfAlignmentWithDeblankIsComplete) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = testing::Fig2Graph(dict);
  TripleGraph g2 = testing::Fig2Graph(dict);
  auto cg = testing::Combine(g1, g2);
  Partition deblank = DeblankPartition(cg);
  EdgeAlignmentStats stats = ComputeEdgeAlignment(cg, deblank);
  EXPECT_DOUBLE_EQ(stats.Ratio(), 1.0);
}

TEST(EdgeAlignmentTest, EmptyGraphsGiveRatioOne) {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  GraphBuilder b2(dict);
  auto g1 = std::move(b1.Build(true)).value();
  auto g2 = std::move(b2.Build(true)).value();
  auto cg = testing::Combine(g1, g2);
  EdgeAlignmentStats stats =
      ComputeEdgeAlignment(cg, TrivialPartition(cg.graph()));
  EXPECT_EQ(stats.total_edges, 0u);
  EXPECT_DOUBLE_EQ(stats.Ratio(), 1.0);
}

TEST(NodeAlignmentTest, CountsClassesAndPerSideNodes) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = TrivialPartition(cg.graph());
  NodeAlignmentStats stats = ComputeNodeAlignment(cg, p);
  // Aligned: w, p, q, r, "a", "b" -> 6 classes.
  EXPECT_EQ(stats.aligned_classes, 6u);
  EXPECT_EQ(stats.aligned_source_nodes, 6u);
  EXPECT_EQ(stats.aligned_target_nodes, 6u);
  EXPECT_EQ(stats.unaligned_source_nodes, g1.NumNodes() - 6u);
  EXPECT_EQ(stats.unaligned_target_nodes, g2.NumNodes() - 6u);
}

TEST(EnumeratePairsTest, PairsMatchPartitionAndHaveCrossover) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = DeblankPartition(cg);
  auto pairs = EnumerateAlignedPairs(cg, p);
  for (const auto& [a, b] : pairs) {
    EXPECT_TRUE(cg.InSource(a));
    EXPECT_TRUE(cg.InTarget(b));
    EXPECT_EQ(p.ColorOf(a), p.ColorOf(b));
  }
  EXPECT_TRUE(HasCrossoverProperty(pairs));
  // b2 and b3 both align to b4: 2 pairs from one class — crossover holds
  // trivially but the pair count shows the many-to-one case.
  size_t blank_pairs = 0;
  for (const auto& [a, b] : pairs) {
    if (cg.graph().IsBlank(a)) ++blank_pairs;
  }
  EXPECT_EQ(blank_pairs, 2u);  // (b2,b4), (b3,b4)
}

TEST(EnumeratePairsTest, LimitIsRespected) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = TrivialPartition(cg.graph());
  auto pairs = EnumerateAlignedPairs(cg, p, 3);
  EXPECT_EQ(pairs.size(), 3u);
}

TEST(CrossoverTest, DetectsViolation) {
  // (1,10),(1,11),(2,10) without (2,11) violates crossover.
  std::vector<std::pair<NodeId, NodeId>> bad = {{1, 10}, {1, 11}, {2, 10}};
  EXPECT_FALSE(HasCrossoverProperty(bad));
  bad.emplace_back(2, 11);
  EXPECT_TRUE(HasCrossoverProperty(bad));
}

}  // namespace
}  // namespace rdfalign
