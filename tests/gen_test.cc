// Tests of the workload generators (DESIGN.md S13): the simulated datasets
// must exhibit the structural properties the paper's experiments rely on.

#include <gtest/gtest.h>

#include "gen/category_gen.h"
#include "gen/efo_gen.h"
#include "gen/gtopdb_gen.h"
#include "gen/textgen.h"
#include "rdf/statistics.h"
#include "test_util.h"

namespace rdfalign::gen {
namespace {

TEST(TextGenTest, DeterministicAndShaped) {
  Rng a(5);
  Rng b(5);
  EXPECT_EQ(RandomWord(a), RandomWord(b));
  EXPECT_EQ(RandomSentence(a, 3, 5), RandomSentence(b, 3, 5));
  Rng rng(7);
  std::string name = RandomName(rng);
  ASSERT_FALSE(name.empty());
  EXPECT_TRUE(std::isupper(static_cast<unsigned char>(name[0])));
  std::string sentence = RandomSentence(rng, 4, 4);
  EXPECT_EQ(std::count(sentence.begin(), sentence.end(), ' '), 3);
}

TEST(TextGenTest, TypoChangesByBoundedDistance) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::string s = RandomSentence(rng, 2, 4);
    std::string t = ApplyTypo(s, rng);
    // One typo is at most 1 edit (swap counts as <= 2).
    int diff = static_cast<int>(s.size()) - static_cast<int>(t.size());
    EXPECT_LE(std::abs(diff), 1);
  }
  EXPECT_EQ(ApplyTypo("", rng).size(), 1u);
}

TEST(EfoGenTest, ProportionsMatchFig9Shape) {
  EfoOptions options;
  options.initial_classes = 120;
  options.versions = 4;
  EfoChain chain = EfoChain::Generate(options);
  ASSERT_EQ(chain.NumVersions(), 4u);
  for (size_t v = 0; v < chain.NumVersions(); ++v) {
    GraphStatistics s = ComputeStatistics(chain.Version(v));
    double lit_share = static_cast<double>(s.literals) / s.nodes;
    double uri_share = static_cast<double>(s.uris) / s.nodes;
    double blank_share = static_cast<double>(s.blanks) / s.nodes;
    EXPECT_GT(lit_share, 0.6) << "version " << v;   // literal-heavy
    EXPECT_LT(uri_share, 0.35) << "version " << v;  // URIs a small share
    EXPECT_GT(blank_share, 0.02) << "version " << v;
    EXPECT_LT(blank_share, 0.30) << "version " << v;
  }
}

TEST(EfoGenTest, DeterministicForSeed) {
  EfoOptions options;
  options.initial_classes = 50;
  options.versions = 3;
  EfoChain a = EfoChain::Generate(options);
  EfoChain b = EfoChain::Generate(options);
  for (size_t v = 0; v < 3; ++v) {
    EXPECT_EQ(a.Version(v).NumNodes(), b.Version(v).NumNodes());
    EXPECT_EQ(a.Version(v).NumEdges(), b.Version(v).NumEdges());
  }
}

TEST(EfoGenTest, VersionsShareDictionaryAndEvolve) {
  EfoOptions options;
  options.initial_classes = 60;
  options.versions = 3;
  EfoChain chain = EfoChain::Generate(options);
  for (size_t v = 0; v + 1 < chain.NumVersions(); ++v) {
    EXPECT_EQ(chain.Version(v).dict_ptr().get(),
              chain.Version(v + 1).dict_ptr().get());
    // Consecutive versions differ but overlap.
    EXPECT_NE(chain.Version(v).NumEdges(), 0u);
  }
  // Ground truth between consecutive versions is non-trivial.
  GroundTruth gt = chain.ClassGroundTruth(0, 1);
  EXPECT_GT(gt.NumPairs(), 40u);
}

TEST(EfoGenTest, PrefixMigrationHappensAtScheduledVersion) {
  EfoOptions options;
  options.initial_classes = 100;
  options.versions = 10;
  options.big_migration_version = 7;
  EfoChain chain = EfoChain::Generate(options);
  auto count_new_prefix = [&](size_t v) {
    size_t count = 0;
    const TripleGraph& g = chain.Version(v);
    for (NodeId n = 0; n < g.NumNodes(); ++n) {
      if (g.IsUri(n) &&
          g.Lexical(n).find("purl.obolibrary.org") != std::string_view::npos) {
        ++count;
      }
    }
    return count;
  };
  // A large batch of URIs moves to the new prefix between versions 7 and 8
  // (0-based: version index 8).
  EXPECT_GT(count_new_prefix(8), count_new_prefix(7) + 10);
}

TEST(GtoPdbGenTest, ChainShapeAndIntegrity) {
  GtoPdbOptions options;
  options.num_ligands = 60;
  options.versions = 4;
  GtoPdbChain chain = GenerateGtoPdbChain(options);
  ASSERT_EQ(chain.versions.size(), 4u);
  for (const auto& db : chain.versions) {
    EXPECT_TRUE(db.ValidateIntegrity().ok());
    EXPECT_GT(db.TotalRows(), 100u);
  }
  // Keys are persistent: a surviving ligand keeps its key across versions.
  const auto* l0 = chain.versions[0].GetTable("ligand");
  const auto* l3 = chain.versions[3].GetTable("ligand");
  size_t survivors = 0;
  for (int64_t key : l0->Keys()) {
    if (l3->Find(key) != nullptr) ++survivors;
  }
  EXPECT_GT(survivors, l0->NumRows() / 2);
}

TEST(GtoPdbGenTest, ExportHasNoBlanksAndDistinctPrefixes) {
  GtoPdbOptions options;
  options.num_ligands = 40;
  options.versions = 2;
  GtoPdbChain chain = GenerateGtoPdbChain(options);
  auto dict = std::make_shared<Dictionary>();
  auto g1 = ExportGtoPdbVersion(chain.versions[0], 0, dict);
  auto g2 = ExportGtoPdbVersion(chain.versions[1], 1, dict);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->CountOfKind(TermKind::kBlank), 0u);
  GraphStatistics s = ComputeStatistics(*g1);
  // Fig. 12: literals slightly outnumber URIs.
  EXPECT_GT(s.literals, 0u);
  EXPECT_GT(s.uris, 0u);
  // Only rdf:type is shared between version namespaces.
  size_t shared = 0;
  for (NodeId n = 0; n < g1->NumNodes(); ++n) {
    if (g1->IsUri(n) && g2->FindUri(g1->Lexical(n)) != kInvalidNode) {
      ++shared;
    }
  }
  EXPECT_EQ(shared, 1u);
}

TEST(GtoPdbGenTest, GroundTruthCoversSurvivingRows) {
  GtoPdbOptions options;
  options.num_ligands = 40;
  options.versions = 2;
  GtoPdbChain chain = GenerateGtoPdbChain(options);
  auto dict = std::make_shared<Dictionary>();
  auto g1 = ExportGtoPdbVersion(chain.versions[0], 0, dict);
  auto g2 = ExportGtoPdbVersion(chain.versions[1], 1, dict);
  ASSERT_TRUE(g1.ok() && g2.ok());
  GroundTruth gt = RelationalGroundTruth(chain.versions[0], *g1, 0,
                                         chain.versions[1], *g2, 1);
  // At least one pair per surviving row plus schema nodes.
  size_t surviving = 0;
  for (const auto& table : chain.versions[0].tables()) {
    const auto* t2 = chain.versions[1].GetTable(table.schema().name);
    for (int64_t key : table.Keys()) {
      if (t2->Find(key) != nullptr) ++surviving;
    }
  }
  EXPECT_GE(gt.NumPairs(), surviving);
  // Pairs reference valid nodes on the correct sides.
  for (auto [a, b] : gt.pairs()) {
    EXPECT_LT(a, g1->NumNodes());
    EXPECT_LT(b, g2->NumNodes());
  }
}

TEST(CategoryGenTest, GrowingVersions) {
  CategoryOptions options;
  options.initial_categories = 100;
  options.initial_articles = 400;
  options.versions = 4;
  CategoryChain chain = CategoryChain::Generate(options);
  ASSERT_EQ(chain.NumVersions(), 4u);
  for (size_t v = 0; v + 1 < chain.NumVersions(); ++v) {
    EXPECT_LT(chain.Version(v).NumNodes(), chain.Version(v + 1).NumNodes());
    EXPECT_LT(chain.Version(v).NumEdges(), chain.Version(v + 1).NumEdges());
  }
  GraphStatistics s = ComputeStatistics(chain.Version(0));
  EXPECT_EQ(s.blanks, 0u);
  EXPECT_GT(s.uris, s.blanks);
}

TEST(CategoryGenTest, DeterministicForSeed) {
  CategoryOptions options;
  options.initial_categories = 50;
  options.initial_articles = 100;
  options.versions = 2;
  CategoryChain a = CategoryChain::Generate(options);
  CategoryChain b = CategoryChain::Generate(options);
  EXPECT_EQ(a.Version(1).NumNodes(), b.Version(1).NumNodes());
  EXPECT_EQ(a.Version(1).NumEdges(), b.Version(1).NumEdges());
}

}  // namespace
}  // namespace rdfalign::gen
