// Determinism of the parallel first-round signing path: the worklist
// engine must produce bit-identical partitions and telemetry for every
// signing-thread count and across repeated runs. The tests force
// parallel_min_round = 1 so the worker pool engages even on test-sized
// graphs (production keeps a high threshold so narrow rounds stay inline).

#include <gtest/gtest.h>

#include <utility>

#include "core/bisim.h"
#include "core/context.h"
#include "core/hybrid.h"
#include "core/refinement.h"
#include "test_util.h"

namespace rdfalign {
namespace {

RefinementOptions Par(size_t threads) {
  RefinementOptions options;
  options.threads = threads;
  options.parallel_min_round = 1;  // engage the pool on tiny graphs
  return options;
}

std::vector<NodeId> AllNodes(const TripleGraph& g) {
  std::vector<NodeId> all(g.NumNodes());
  for (NodeId i = 0; i < g.NumNodes(); ++i) all[i] = i;
  return all;
}

class ParallelDeterminismProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelDeterminismProperty, ThreadCountsProduceIdenticalPartitions) {
  const uint64_t seed = GetParam();
  testing::RandomGraphOptions options;
  options.seed = seed * 131;
  options.uris = 10 + seed % 15;
  options.literals = 5 + seed % 7;
  options.blanks = 4 + seed % 10;
  options.edges = 30 + seed % 80;
  options.predicates = 2 + seed % 5;
  TripleGraph g = testing::RandomGraph(options);
  const std::vector<NodeId> all = AllNodes(g);

  RefinementStats base_stats;
  Partition base =
      BisimRefineFixpoint(g, LabelPartition(g), all, &base_stats, Par(1));

  for (size_t threads : {2u, 3u, 4u, 8u}) {
    RefinementStats stats;
    Partition p =
        BisimRefineFixpoint(g, LabelPartition(g), all, &stats, Par(threads));
    EXPECT_EQ(p.colors(), base.colors()) << "threads=" << threads;
    // The whole telemetry must match: same rounds, same worklists, same
    // signing work — parallelism only changes who builds the signature.
    EXPECT_EQ(stats.iterations, base_stats.iterations);
    EXPECT_EQ(stats.dirty_per_iteration, base_stats.dirty_per_iteration);
    EXPECT_EQ(stats.signature_bytes, base_stats.signature_bytes);
    EXPECT_EQ(stats.final_classes, base_stats.final_classes);
    EXPECT_EQ(stats.threads_used, threads);
  }
}

TEST_P(ParallelDeterminismProperty, KeyedAndContextualAcrossThreadCounts) {
  const uint64_t seed = GetParam();
  testing::RandomGraphOptions options;
  options.seed = seed * 613;
  options.uris = 9 + seed % 9;
  options.literals = 4 + seed % 6;
  options.blanks = 3 + seed % 8;
  options.edges = 25 + seed % 70;
  options.predicates = 2 + seed % 6;
  TripleGraph g = testing::RandomGraph(options);
  const std::vector<NodeId> all = AllNodes(g);

  std::vector<uint8_t> mask(g.NumNodes(), 0);
  for (const Triple& t : g.triples()) {
    if ((g.LexicalId(t.p) + seed) % 2 == 0) mask[t.p] = 1;
  }
  Partition keyed1 =
      BisimRefineFixpointKeyed(g, LabelPartition(g), all, mask, nullptr,
                               Par(1));

  std::vector<uint8_t> predicate_only(g.NumNodes(), 0);
  for (NodeId n : PredicateOnlyUris(g)) predicate_only[n] = 1;
  MediationIndex mediation(g);
  Partition ctx1 = ContextualRefineFixpoint(g, LabelPartition(g), all,
                                            mediation, predicate_only,
                                            nullptr, Par(1));

  for (size_t threads : {2u, 4u, 8u}) {
    Partition keyed =
        BisimRefineFixpointKeyed(g, LabelPartition(g), all, mask, nullptr,
                                 Par(threads));
    EXPECT_EQ(keyed.colors(), keyed1.colors()) << "threads=" << threads;
    Partition ctx = ContextualRefineFixpoint(g, LabelPartition(g), all,
                                             mediation, predicate_only,
                                             nullptr, Par(threads));
    EXPECT_EQ(ctx.colors(), ctx1.colors()) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelDeterminismProperty,
                         ::testing::Range<uint64_t>(1, 21));

TEST(ParallelRefinementTest, RepeatedRunsAreStable) {
  auto [g1, g2] = testing::RandomEvolvingPair(7);
  CombinedGraph cg = testing::Combine(g1, g2);
  Partition first = HybridPartition(cg, nullptr, Par(4));
  for (int run = 0; run < 4; ++run) {
    Partition again = HybridPartition(cg, nullptr, Par(4));
    EXPECT_EQ(again.colors(), first.colors()) << "run " << run;
  }
  // And the parallel result matches the default sequential configuration.
  Partition sequential = HybridPartition(cg);
  EXPECT_EQ(first.colors(), sequential.colors());
}

TEST(ParallelRefinementTest, AutoThreadCountMatchesSequential) {
  TripleGraph g = testing::Fig2Graph();
  const std::vector<NodeId> all = AllNodes(g);
  RefinementStats stats;
  Partition auto_threads =
      BisimRefineFixpoint(g, LabelPartition(g), all, &stats, Par(0));
  Partition sequential =
      BisimRefineFixpoint(g, LabelPartition(g), all, nullptr, Par(1));
  EXPECT_EQ(auto_threads.colors(), sequential.colors());
  // threads=0 resolves to a concrete worker count.
  EXPECT_GE(stats.threads_used, 1u);
}

TEST(ParallelRefinementTest, FirstRoundTimingIsReported) {
  auto [g1, g2] = testing::RandomEvolvingPair(3);
  CombinedGraph cg = testing::Combine(g1, g2);
  RefinementStats stats;
  HybridPartition(cg, &stats, Par(2));
  EXPECT_GE(stats.first_round_ms, 0.0);
  EXPECT_EQ(stats.threads_used, 2u);
  EXPECT_GT(stats.signature_bytes, 0u);
}

TEST(ParallelRefinementTest, HighThresholdKeepsSigningInline) {
  // Default parallel_min_round is far above test-graph sizes: requesting
  // threads must not change anything when every round is narrow.
  TripleGraph g = testing::Fig2Graph();
  const std::vector<NodeId> all = AllNodes(g);
  RefinementOptions wide;
  wide.threads = 8;  // default parallel_min_round stays 4096
  Partition p = BisimRefineFixpoint(g, LabelPartition(g), all, nullptr, wide);
  Partition q = BisimRefineFixpoint(g, LabelPartition(g), all);
  EXPECT_EQ(p.colors(), q.colors());
}

}  // namespace
}  // namespace rdfalign
