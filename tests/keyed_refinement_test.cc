#include <gtest/gtest.h>

#include "core/refinement.h"
#include "test_util.h"

namespace rdfalign {
namespace {

// Two versions of a record store: entities carry a stable key attribute
// (ex:label) and volatile non-key attributes (ex:updated). Full deblanking
// fails (the volatile field changed); keyed refinement restricted to the
// key predicate aligns by the stable part only — the §6 "graph key" idea.
struct KeyedFixture {
  KeyedFixture() {
    auto dict = std::make_shared<Dictionary>();
    GraphBuilder b1(dict);
    {
      NodeId root = b1.AddUri("ex:root");
      NodeId has = b1.AddUri("ex:has");
      NodeId label = b1.AddUri("ex:label");
      NodeId updated = b1.AddUri("ex:updated");
      NodeId rec_a = b1.AddBlank("a");
      NodeId rec_b = b1.AddBlank("b");
      b1.AddTriple(root, has, rec_a);
      b1.AddTriple(root, has, rec_b);
      b1.AddTriple(rec_a, label, b1.AddLiteral("alpha"));
      b1.AddTriple(rec_a, updated, b1.AddLiteral("2024-01-01"));
      b1.AddTriple(rec_b, label, b1.AddLiteral("beta"));
      b1.AddTriple(rec_b, updated, b1.AddLiteral("2024-02-02"));
    }
    GraphBuilder b2(dict);
    {
      NodeId root = b2.AddUri("ex:root");
      NodeId has = b2.AddUri("ex:has");
      NodeId label = b2.AddUri("ex:label");
      NodeId updated = b2.AddUri("ex:updated");
      NodeId rec_a = b2.AddBlank("x");
      NodeId rec_b = b2.AddBlank("y");
      b2.AddTriple(root, has, rec_a);
      b2.AddTriple(root, has, rec_b);
      b2.AddTriple(rec_a, label, b2.AddLiteral("alpha"));
      // The volatile timestamp changed:
      b2.AddTriple(rec_a, updated, b2.AddLiteral("2025-06-11"));
      b2.AddTriple(rec_b, label, b2.AddLiteral("beta"));
      b2.AddTriple(rec_b, updated, b2.AddLiteral("2025-06-12"));
    }
    g1 = std::move(b1.Build(true)).value();
    g2 = std::move(b2.Build(true)).value();
    cg = std::make_unique<CombinedGraph>(testing::Combine(g1, g2));
  }
  TripleGraph g1, g2;
  std::unique_ptr<CombinedGraph> cg;
};

std::vector<NodeId> Blanks(const TripleGraph& g) {
  return g.NodesOfKind(TermKind::kBlank);
}

TEST(KeyedRefinementTest, FullDeblankMissesVolatileRecords) {
  KeyedFixture f;
  const TripleGraph& g = f.cg->graph();
  Partition full = BisimRefineFixpoint(g, LabelPartition(g), Blanks(g));
  EXPECT_NE(full.ColorOf(g.FindBlank("a")), full.ColorOf(g.FindBlank("x")));
}

TEST(KeyedRefinementTest, KeyRestrictedDeblankAlignsByStableAttributes) {
  KeyedFixture f;
  const TripleGraph& g = f.cg->graph();
  auto mask = BuildPredicateMask(g, {"ex:label"});
  Partition keyed =
      BisimRefineFixpointKeyed(g, LabelPartition(g), Blanks(g), mask);
  // Records align by their key attribute despite the edited timestamp.
  EXPECT_EQ(keyed.ColorOf(g.FindBlank("a")), keyed.ColorOf(g.FindBlank("x")));
  EXPECT_EQ(keyed.ColorOf(g.FindBlank("b")), keyed.ColorOf(g.FindBlank("y")));
  // Distinct keys stay distinct.
  EXPECT_NE(keyed.ColorOf(g.FindBlank("a")), keyed.ColorOf(g.FindBlank("y")));
}

TEST(KeyedRefinementTest, FullMaskEqualsPlainRefinement) {
  // With every predicate in the key, keyed refinement IS plain refinement.
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  std::vector<uint8_t> all_mask(g.NumNodes(), 1);
  Partition plain = BisimRefineFixpoint(g, LabelPartition(g), Blanks(g));
  Partition keyed =
      BisimRefineFixpointKeyed(g, LabelPartition(g), Blanks(g), all_mask);
  EXPECT_TRUE(Partition::Equivalent(plain, keyed));
}

TEST(KeyedRefinementTest, EmptyMaskAlignsEverythingRefinable) {
  // With no key predicates every refined node has an empty signature:
  // all blanks collapse into one class.
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  std::vector<uint8_t> empty_mask(g.NumNodes(), 0);
  Partition keyed =
      BisimRefineFixpointKeyed(g, LabelPartition(g), Blanks(g), empty_mask);
  EXPECT_EQ(keyed.ColorOf(g.FindBlank("b1")), keyed.ColorOf(g.FindBlank("b4")));
  EXPECT_EQ(keyed.ColorOf(g.FindBlank("b2")), keyed.ColorOf(g.FindBlank("b5")));
}

TEST(KeyedRefinementTest, MaskBuilderMarksBothSides) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  auto mask = BuildPredicateMask(g, {"ex:q", "ex:nonexistent"});
  size_t marked = 0;
  for (NodeId n = 0; n < g.NumNodes(); ++n) {
    if (mask[n]) {
      ++marked;
      EXPECT_EQ(g.Lexical(n), "ex:q");
    }
  }
  EXPECT_EQ(marked, 2u);  // one ex:q node per side
}

class KeyedMonotoneProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KeyedMonotoneProperty, SmallerKeysGiveCoarserPartitions) {
  // Removing predicates from the key can only merge classes.
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  const TripleGraph& g = cg.graph();
  std::vector<NodeId> blanks = Blanks(g);
  std::vector<uint8_t> all_mask(g.NumNodes(), 1);
  // A reduced key: half of the predicates, selected by *label* so the mask
  // is consistent across the two sides (an asymmetric mask would not be a
  // key).
  std::vector<uint8_t> half_mask(g.NumNodes(), 0);
  for (const Triple& t : g.triples()) {
    if (g.LexicalId(t.p) % 2 == 0) half_mask[t.p] = 1;
  }
  Partition full =
      BisimRefineFixpointKeyed(g, LabelPartition(g), blanks, all_mask);
  Partition half =
      BisimRefineFixpointKeyed(g, LabelPartition(g), blanks, half_mask);
  EXPECT_TRUE(Partition::IsFinerOrEqual(full, half))
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyedMonotoneProperty,
                         ::testing::Range<uint64_t>(1, 7));

}  // namespace
}  // namespace rdfalign
