#include "core/partition.h"

#include <gtest/gtest.h>

#include "core/refinement.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(PartitionTest, FromColorsRenumbersDensely) {
  Partition p = Partition::FromColors({7, 7, 42, 7, 9});
  EXPECT_EQ(p.NumNodes(), 5u);
  EXPECT_EQ(p.NumColors(), 3u);
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(1));
  EXPECT_EQ(p.ColorOf(0), p.ColorOf(3));
  EXPECT_NE(p.ColorOf(0), p.ColorOf(2));
  EXPECT_NE(p.ColorOf(2), p.ColorOf(4));
  for (NodeId n = 0; n < 5; ++n) EXPECT_LT(p.ColorOf(n), 3u);
}

TEST(PartitionTest, SingleClassConstructor) {
  Partition p(4);
  EXPECT_EQ(p.NumColors(), 1u);
  Partition empty(0);
  EXPECT_EQ(empty.NumColors(), 0u);
}

TEST(PartitionTest, EquivalenceIgnoresColorNames) {
  Partition a = Partition::FromColors({0, 0, 1, 2});
  Partition b = Partition::FromColors({5, 5, 9, 1});
  EXPECT_TRUE(Partition::Equivalent(a, b));
}

TEST(PartitionTest, EquivalenceDetectsDifferentGrouping) {
  Partition a = Partition::FromColors({0, 0, 1, 1});
  Partition b = Partition::FromColors({0, 1, 1, 0});
  EXPECT_FALSE(Partition::Equivalent(a, b));
  // Same class count but different split.
  EXPECT_EQ(a.NumColors(), b.NumColors());
}

TEST(PartitionTest, FinerOrEqual) {
  Partition coarse = Partition::FromColors({0, 0, 0, 1});
  Partition fine = Partition::FromColors({0, 0, 1, 2});
  EXPECT_TRUE(Partition::IsFinerOrEqual(fine, coarse));
  EXPECT_FALSE(Partition::IsFinerOrEqual(coarse, fine));
  EXPECT_TRUE(Partition::IsFinerOrEqual(fine, fine));
}

TEST(PartitionTest, ClassesGroupsMembers) {
  Partition p = Partition::FromColors({0, 1, 0, 1, 2});
  PartitionClasses classes = p.Classes();
  ASSERT_EQ(classes.size(), 3u);
  auto members = [&](ColorId c) {
    std::span<const NodeId> s = classes[c];
    return std::vector<NodeId>(s.begin(), s.end());
  };
  EXPECT_EQ(members(p.ColorOf(0)), (std::vector<NodeId>{0, 2}));
  EXPECT_EQ(members(p.ColorOf(1)), (std::vector<NodeId>{1, 3}));
  EXPECT_EQ(members(p.ColorOf(4)), (std::vector<NodeId>{4}));
  // CSR shape: offsets cover every node exactly once.
  EXPECT_EQ(classes.offsets.front(), 0u);
  EXPECT_EQ(classes.offsets.back(), p.NumNodes());
  EXPECT_EQ(classes.members.size(), p.NumNodes());
}

TEST(LabelPartitionTest, GroupsBlanksTogetherAndLabelsApart) {
  TripleGraph g = testing::Fig2Graph();
  Partition p = LabelPartition(g);
  NodeId b1 = g.FindBlank("b1");
  NodeId b2 = g.FindBlank("b2");
  NodeId b3 = g.FindBlank("b3");
  EXPECT_EQ(p.ColorOf(b1), p.ColorOf(b2));
  EXPECT_EQ(p.ColorOf(b2), p.ColorOf(b3));
  EXPECT_NE(p.ColorOf(g.FindUri("ex:w")), p.ColorOf(g.FindUri("ex:u")));
  EXPECT_NE(p.ColorOf(g.FindLiteral("a")), p.ColorOf(g.FindLiteral("b")));
  EXPECT_NE(p.ColorOf(g.FindUri("ex:w")), p.ColorOf(b1));
}

TEST(BlankColorsRenumberTest, NonDenseBlankColorIsRenumberedDensely) {
  // BlankColors assigns the blank class the id NumColors(), which is
  // non-dense whenever blanking empties an existing class. FromColors must
  // renumber by first occurrence, leaving no holes.
  Partition p = Partition::FromColors({0, 1, 1, 2});
  ASSERT_EQ(p.NumColors(), 3u);
  // Blank exactly the nodes of color 1: color 1 disappears, the blank color
  // enters as (pre-renumbering) id 3 — two holes without renumbering.
  Partition blanked = BlankColors(p, {1, 2});
  EXPECT_EQ(blanked.NumColors(), 3u);
  for (NodeId n = 0; n < blanked.NumNodes(); ++n) {
    EXPECT_LT(blanked.ColorOf(n), blanked.NumColors());
  }
  // First-occurrence order: node 0 keeps class 0, the blanked pair forms
  // class 1, node 3 class 2.
  EXPECT_EQ(blanked.colors(), (std::vector<ColorId>{0, 1, 1, 2}));
  // Blanking every node collapses to a single dense class.
  Partition all_blank = BlankColors(p, {0, 1, 2, 3});
  EXPECT_EQ(all_blank.NumColors(), 1u);
  EXPECT_EQ(all_blank.colors(), (std::vector<ColorId>{0, 0, 0, 0}));
}

TEST(TrivialPartitionTest, BlanksAreSingletons) {
  TripleGraph g = testing::Fig2Graph();
  Partition p = TrivialPartition(g);
  NodeId b1 = g.FindBlank("b1");
  NodeId b2 = g.FindBlank("b2");
  EXPECT_NE(p.ColorOf(b1), p.ColorOf(b2));
}

TEST(TrivialPartitionTest, AlignsEqualLabelsAcrossVersions) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  Partition p = TrivialPartition(cg.graph());
  NodeId w1 = 0;
  while (!(cg.graph().IsUri(w1) && cg.graph().Lexical(w1) == "ex:w")) ++w1;
  NodeId w2 = cg.n1();
  while (!(cg.graph().IsUri(w2) && cg.graph().Lexical(w2) == "ex:w")) ++w2;
  EXPECT_EQ(p.ColorOf(w1), p.ColorOf(w2));
  // A URI and a literal with the same lexical form stay apart.
  GraphBuilder b;
  NodeId uri_x = b.AddUri("x");
  NodeId p_pred = b.AddUri("p");
  NodeId lit_x = b.AddLiteral("x");
  b.AddTriple(uri_x, p_pred, lit_x);
  auto g = std::move(b.Build(true)).value();
  Partition tp = TrivialPartition(g);
  EXPECT_NE(tp.ColorOf(g.FindUri("x")), tp.ColorOf(g.FindLiteral("x")));
}

}  // namespace
}  // namespace rdfalign
