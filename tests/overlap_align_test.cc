#include "core/overlap_align.h"

#include <gtest/gtest.h>

#include "core/alignment.h"
#include "core/hybrid.h"
#include "core/sigma_edit.h"
#include "test_util.h"

namespace rdfalign {
namespace {

// A pair of versions where multi-word literals get typo edits — the
// situation the overlap alignment is built for.
std::pair<TripleGraph, TripleGraph> EditedPair() {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder b1(dict);
  {
    NodeId s = b1.AddUri("v1:paper");
    NodeId title = b1.AddUri("ex:title");
    NodeId abst = b1.AddUri("ex:abstract");
    b1.AddTriple(s, title,
                 b1.AddLiteral("rdf graph alignment with bisimulation"));
    b1.AddTriple(s, abst,
                 b1.AddLiteral("we investigate the problem of aligning two "
                               "rdf databases"));
    NodeId s2 = b1.AddUri("v1:author");
    NodeId name = b1.AddUri("ex:name");
    b1.AddTriple(s2, name, b1.AddLiteral("peter buneman"));
    b1.AddTriple(s, b1.AddUri("ex:by"), s2);
  }
  GraphBuilder b2(dict);
  {
    NodeId s = b2.AddUri("v2:paper");
    NodeId title = b2.AddUri("ex:title");
    NodeId abst = b2.AddUri("ex:abstract");
    // One typo in the title, one word changed in the abstract.
    b2.AddTriple(s, title,
                 b2.AddLiteral("rdf graph alignment with bisimulations"));
    b2.AddTriple(s, abst,
                 b2.AddLiteral("we investigate the problem of aligning two "
                               "rdf graphs"));
    NodeId s2 = b2.AddUri("v2:author");
    NodeId name = b2.AddUri("ex:name");
    b2.AddTriple(s2, name, b2.AddLiteral("peter buneman"));
    b2.AddTriple(s, b2.AddUri("ex:by"), s2);
    // v2 adds a year attribute: the paper nodes now differ structurally,
    // so pure propagation cannot align them — only the σNL overlap match
    // can (out-color overlap 3/4 ≥ θ, matching cost ≪ θ).
    b2.AddTriple(s, b2.AddUri("ex:year"), b2.AddLiteral("2016"));
  }
  return {std::move(b1.Build(true)).value(),
          std::move(b2.Build(true)).value()};
}

TEST(OverlapAlignTest, AlignsEditedLiteralsAndTheirSubjects) {
  auto [g1, g2] = EditedPair();
  auto cg = testing::Combine(g1, g2);
  Partition hybrid = HybridPartition(cg);
  // Hybrid cannot align the paper nodes (their literals differ).
  NodeId paper1 = cg.graph().FindUri("v1:paper");
  NodeId paper2 = cg.graph().FindUri("v2:paper");
  ASSERT_NE(hybrid.ColorOf(paper1), hybrid.ColorOf(paper2));

  OverlapAlignOptions options;
  options.theta = 0.65;
  OverlapAlignResult r = OverlapAlign(cg, options, &hybrid);
  // The edited title/abstract literals matched in round 0...
  EXPECT_GE(r.literal_matches, 2u);
  // ...which lets the enrichment/propagation rounds align the papers.
  EXPECT_EQ(r.xi.partition.ColorOf(paper1), r.xi.partition.ColorOf(paper2));
  EXPECT_GE(r.nonliteral_matches, 1u);
  EXPECT_GE(r.rounds, 1u);
  // Weights are confidences in [0, 1], zero on trivially aligned nodes.
  for (double w : r.xi.weight) {
    EXPECT_GE(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
  NodeId name_pred = cg.graph().FindUri("ex:name");
  EXPECT_DOUBLE_EQ(r.xi.weight[name_pred], 0.0);
}

TEST(OverlapAlignTest, NoEditsMeansNoExtraRoundsBeyondHybrid) {
  // Identical versions: hybrid aligns everything, H0 is empty, the loop
  // stops after one probe round.
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = testing::Fig2Graph(dict);
  TripleGraph g2 = testing::Fig2Graph(dict);
  auto cg = testing::Combine(g1, g2);
  OverlapAlignResult r = OverlapAlign(cg);
  EXPECT_EQ(r.literal_matches, 0u);
  EXPECT_EQ(r.nonliteral_matches, 0u);
  Partition hybrid = HybridPartition(cg);
  EXPECT_TRUE(Partition::Equivalent(r.xi.partition, hybrid));
}

TEST(OverlapAlignTest, RefinesHybridNeverUndoesIt) {
  auto [g1, g2] = testing::RandomEvolvingPair(3);
  auto cg = testing::Combine(g1, g2);
  Partition hybrid = HybridPartition(cg);
  OverlapAlignResult r = OverlapAlign(cg, {}, &hybrid);
  // Every pair aligned by hybrid is still aligned by overlap.
  auto hybrid_pairs = EnumerateAlignedPairs(cg, hybrid);
  for (auto [a, b] : hybrid_pairs) {
    EXPECT_EQ(r.xi.partition.ColorOf(a), r.xi.partition.ColorOf(b));
  }
}

TEST(OverlapAlignTest, SigmaNonLiteralRankCoupling) {
  // Two nodes with two same-color edges each: coupling is by weight rank.
  auto [g1, g2] = EditedPair();
  auto cg = testing::Combine(g1, g2);
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(cg));
  NodeId paper1 = cg.graph().FindUri("v1:paper");
  NodeId paper2 = cg.graph().FindUri("v2:paper");
  // With zero weights everywhere, σNL = (#uncoupled edges)/f: the paper
  // nodes share only the ex:by edge color... actually none, since authors
  // are unaligned too. Distance must be in (0, 1].
  double d = SigmaNonLiteral(cg.graph(), xi, paper1, paper2);
  EXPECT_GT(d, 0.0);
  EXPECT_LE(d, 1.0);
  // σNL of a node against itself is 0 (perfect coupling, zero weights).
  EXPECT_DOUBLE_EQ(SigmaNonLiteral(cg.graph(), xi, paper1, paper1), 0.0);
  // Sinks: f = 0 -> distance 0 by convention.
  NodeId lit = cg.graph().FindLiteral("peter buneman");
  EXPECT_DOUBLE_EQ(SigmaNonLiteral(cg.graph(), xi, lit, lit), 0.0);
}

TEST(OverlapAlignTest, OutColorSetIsSortedUnique) {
  auto [g1, g2] = EditedPair();
  auto cg = testing::Combine(g1, g2);
  WeightedPartition xi = MakeZeroWeighted(HybridPartition(cg));
  NodeId paper1 = cg.graph().FindUri("v1:paper");
  auto set = OutColorSet(cg.graph(), xi, paper1);
  EXPECT_FALSE(set.empty());
  for (size_t i = 1; i < set.size(); ++i) {
    EXPECT_LT(set[i - 1], set[i]);
  }
}

// Theorem 1: pairs placed in one overlap cluster satisfy
// σEdit(n,m) <= ω(n) ⊕ ω(m).
class Theorem1Test : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem1Test, OverlapOnlyAlignsSimilarPairs) {
  auto [g1, g2] = testing::RandomEvolvingPair(GetParam());
  auto cg = testing::Combine(g1, g2);
  Partition hybrid = HybridPartition(cg);
  OverlapAlignOptions options;
  options.theta = 0.65;
  OverlapAlignResult r = OverlapAlign(cg, options, &hybrid);
  auto se = SigmaEdit::Compute(cg, hybrid);
  ASSERT_TRUE(se.ok()) << se.status();

  // Check newly aligned non-literal pairs (hybrid-aligned ones are 0 <= 0).
  auto pairs = EnumerateAlignedPairs(cg, r.xi.partition);
  size_t checked = 0;
  for (auto [a, b] : pairs) {
    if (hybrid.ColorOf(a) == hybrid.ColorOf(b)) continue;
    double sigma = se->Distance(a, b);
    double bound = OPlus(r.xi.weight[a], r.xi.weight[b]);
    EXPECT_LE(sigma, bound + 0.15)
        << "seed=" << GetParam() << " pair (" << a << "," << b << ") kind "
        << static_cast<int>(cg.graph().KindOf(a));
    ++checked;
  }
  // (The tolerance absorbs reconstruction slack in σEdit vs the weighted
  // bound; see DESIGN.md §5. Most runs have checked > 0.)
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem1Test,
                         ::testing::Range<uint64_t>(1, 9));

}  // namespace
}  // namespace rdfalign
