#include "core/similarity_flooding.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace rdfalign {
namespace {

TEST(SimilarityFloodingTest, LabelEqualPairsScoreHighest) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  auto sf = SimilarityFlooding::Compute(cg);
  ASSERT_TRUE(sf.ok()) << sf.status();
  const TripleGraph& g = cg.graph();
  // The shared root w pairs with its twin more strongly than with anything
  // else.
  NodeId w1 = g.FindUri("ex:w");
  NodeId w2 = kInvalidNode;
  for (NodeId n = cg.n1(); n < g.NumNodes(); ++n) {
    if (g.IsUri(n) && g.Lexical(n) == "ex:w") w2 = n;
  }
  ASSERT_NE(w2, kInvalidNode);
  double self = sf->Similarity(w1, w2);
  EXPECT_GT(self, 0.5);
  NodeId v = kInvalidNode;
  for (NodeId n = cg.n1(); n < g.NumNodes(); ++n) {
    if (g.IsUri(n) && g.Lexical(n) == "ex:v") v = n;
  }
  EXPECT_GT(self, sf->Similarity(w1, v));
}

TEST(SimilarityFloodingTest, StructureFloodsToRenamedUri) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  auto sf = SimilarityFlooding::Compute(cg);
  ASSERT_TRUE(sf.ok());
  const TripleGraph& g = cg.graph();
  NodeId u = g.FindUri("ex:u");
  NodeId v = kInvalidNode;
  NodeId w2 = kInvalidNode;
  for (NodeId n = cg.n1(); n < g.NumNodes(); ++n) {
    if (!g.IsUri(n)) continue;
    if (g.Lexical(n) == "ex:v") v = n;
    if (g.Lexical(n) == "ex:w") w2 = n;
  }
  // u's neighbors ("a", "b", w) pump similarity into (u, v): the renamed
  // URI becomes u's best partner among the target URIs.
  double uv = sf->Similarity(u, v);
  EXPECT_GT(uv, 0.0);
  EXPECT_GT(uv, sf->Similarity(u, w2));
}

TEST(SimilarityFloodingTest, GreedyMatchingIsOneToOne) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  auto sf = SimilarityFlooding::Compute(cg);
  ASSERT_TRUE(sf.ok());
  auto matching = sf->GreedyMatching(0.05);
  std::set<NodeId> left;
  std::set<NodeId> right;
  for (auto [a, b] : matching) {
    EXPECT_TRUE(cg.InSource(a));
    EXPECT_TRUE(cg.InTarget(b));
    EXPECT_TRUE(left.insert(a).second) << "duplicate left node";
    EXPECT_TRUE(right.insert(b).second) << "duplicate right node";
  }
  EXPECT_FALSE(matching.empty());
}

TEST(SimilarityFloodingTest, DeterministicAcrossRuns) {
  auto [g1, g2] = testing::RandomEvolvingPair(5);
  auto cg = testing::Combine(g1, g2);
  auto a = SimilarityFlooding::Compute(cg);
  auto b = SimilarityFlooding::Compute(cg);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->NumPairs(), b->NumPairs());
  EXPECT_EQ(a->GreedyMatching(0.1), b->GreedyMatching(0.1));
}

TEST(SimilarityFloodingTest, SupportCapIsEnforced) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  SimilarityFloodingOptions options;
  options.max_pairs = 2;
  auto sf = SimilarityFlooding::Compute(cg, options);
  EXPECT_FALSE(sf.ok());
  EXPECT_TRUE(sf.status().IsOutOfRange());
}

TEST(SimilarityFloodingTest, OutsideSupportIsZero) {
  auto [g1, g2] = testing::Fig3Graphs();
  auto cg = testing::Combine(g1, g2);
  auto sf = SimilarityFlooding::Compute(cg);
  ASSERT_TRUE(sf.ok());
  // A pair of two source-side nodes is never in the support.
  EXPECT_DOUBLE_EQ(sf->Similarity(0, 1), 0.0);
}

}  // namespace
}  // namespace rdfalign
