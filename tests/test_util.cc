#include "test_util.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <unordered_map>

#include "gen/textgen.h"

namespace rdfalign::testing {

TripleGraph Fig2Graph(std::shared_ptr<Dictionary> dict) {
  // Reconstructed from Figs. 2-5: 10 edges (3×p, 5×q, 2×r); b2 and b3 are
  // bisimilar (contents (q,"a")); b1 reaches u; u and w form a cycle.
  GraphBuilder b(std::move(dict));
  NodeId w = b.AddUri("ex:w");
  NodeId u = b.AddUri("ex:u");
  NodeId p = b.AddUri("ex:p");
  NodeId q = b.AddUri("ex:q");
  NodeId r = b.AddUri("ex:r");
  NodeId b1 = b.AddBlank("b1");
  NodeId b2 = b.AddBlank("b2");
  NodeId b3 = b.AddBlank("b3");
  NodeId la = b.AddLiteral("a");
  NodeId lb = b.AddLiteral("b");
  b.AddTriple(w, p, b1);
  b.AddTriple(w, p, u);
  b.AddTriple(w, p, lb);
  b.AddTriple(b1, q, b2);
  b.AddTriple(b1, r, u);
  b.AddTriple(b2, q, la);
  b.AddTriple(b3, q, la);
  b.AddTriple(u, q, la);
  b.AddTriple(u, q, lb);
  b.AddTriple(u, r, w);
  return std::move(b.Build(true)).value();
}

std::pair<TripleGraph, TripleGraph> Fig3Graphs() {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = Fig2Graph(dict);
  // G2: b2/b3 merged into b4, u renamed to v, b1 reappears as b5.
  GraphBuilder b(dict);
  NodeId w = b.AddUri("ex:w");
  NodeId v = b.AddUri("ex:v");
  NodeId p = b.AddUri("ex:p");
  NodeId q = b.AddUri("ex:q");
  NodeId r = b.AddUri("ex:r");
  NodeId b5 = b.AddBlank("b5");
  NodeId b4 = b.AddBlank("b4");
  NodeId la = b.AddLiteral("a");
  NodeId lb = b.AddLiteral("b");
  b.AddTriple(w, p, b5);
  b.AddTriple(w, p, v);
  b.AddTriple(w, p, lb);
  b.AddTriple(b5, q, b4);
  b.AddTriple(b5, r, v);
  b.AddTriple(b4, q, la);
  b.AddTriple(v, q, la);
  b.AddTriple(v, q, lb);
  b.AddTriple(v, r, w);
  return {std::move(g1), std::move(b.Build(true)).value()};
}

std::pair<TripleGraph, TripleGraph> Fig1Graphs() {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder v1(dict);
  {
    NodeId ss = v1.AddUri("ex:ss");
    NodeId eduni = v1.AddUri("ex:ed-uni");
    NodeId address = v1.AddUri("ex:address");
    NodeId employer = v1.AddUri("ex:employer");
    NodeId name = v1.AddUri("ex:name");
    NodeId zip = v1.AddUri("ex:zip");
    NodeId city = v1.AddUri("ex:city");
    NodeId first = v1.AddUri("ex:first");
    NodeId middle = v1.AddUri("ex:middle");
    NodeId last = v1.AddUri("ex:last");
    NodeId b1 = v1.AddBlank("b1");
    NodeId b2 = v1.AddBlank("b2");
    v1.AddTriple(ss, address, b1);
    v1.AddTriple(ss, employer, eduni);
    v1.AddTriple(ss, name, b2);
    v1.AddTriple(b1, zip, v1.AddLiteral("EH8"));
    v1.AddTriple(b1, city, v1.AddLiteral("Edinburgh"));
    v1.AddTriple(eduni, name, v1.AddLiteral("University of Edinburgh"));
    v1.AddTriple(eduni, city, v1.AddLiteral("Edinburgh"));
    v1.AddTriple(b2, first, v1.AddLiteral("Slawek"));
    v1.AddTriple(b2, middle, v1.AddLiteral("Pawel"));
    v1.AddTriple(b2, last, v1.AddLiteral("Staworko"));
  }
  GraphBuilder v2(dict);
  {
    NodeId ss = v2.AddUri("ex:ss");
    NodeId uoe = v2.AddUri("ex:uoe");
    NodeId address = v2.AddUri("ex:address");
    NodeId employer = v2.AddUri("ex:employer");
    NodeId name = v2.AddUri("ex:name");
    NodeId zip = v2.AddUri("ex:zip");
    NodeId city = v2.AddUri("ex:city");
    NodeId first = v2.AddUri("ex:first");
    NodeId last = v2.AddUri("ex:last");
    NodeId b3 = v2.AddBlank("b3");
    NodeId b4 = v2.AddBlank("b4");
    v2.AddTriple(ss, address, b3);
    v2.AddTriple(ss, employer, uoe);
    v2.AddTriple(ss, name, b4);
    v2.AddTriple(b3, zip, v2.AddLiteral("EH8"));
    v2.AddTriple(b3, city, v2.AddLiteral("Edinburgh"));
    v2.AddTriple(uoe, name, v2.AddLiteral("University of Edinburgh"));
    v2.AddTriple(uoe, city, v2.AddLiteral("Edinburgh"));
    v2.AddTriple(b4, first, v2.AddLiteral("Slawomir"));
    v2.AddTriple(b4, last, v2.AddLiteral("Staworko"));
  }
  return {std::move(v1.Build(true)).value(),
          std::move(v2.Build(true)).value()};
}

std::pair<TripleGraph, TripleGraph> Fig7Graphs() {
  auto dict = std::make_shared<Dictionary>();
  GraphBuilder g1(dict);
  {
    NodeId w = g1.AddUri("ex:w");
    NodeId u = g1.AddUri("ex:u");
    NodeId v = g1.AddUri("ex:v");
    NodeId p = g1.AddUri("ex:p");
    NodeId q = g1.AddUri("ex:q");
    NodeId r = g1.AddUri("ex:r");
    g1.AddTriple(w, r, u);
    g1.AddTriple(w, q, v);
    g1.AddTriple(u, p, g1.AddLiteral("a"));
    g1.AddTriple(u, p, g1.AddLiteral("c"));
    g1.AddTriple(u, p, g1.AddLiteral("b"));
    g1.AddTriple(v, p, g1.AddLiteral("abc"));
    g1.AddTriple(v, q, g1.AddLiteral("c"));
  }
  GraphBuilder g2(dict);
  {
    NodeId w = g2.AddUri("ex:w2");
    NodeId u = g2.AddUri("ex:u2");
    NodeId v = g2.AddUri("ex:v2");
    NodeId p = g2.AddUri("ex:p");
    NodeId q = g2.AddUri("ex:q");
    NodeId r = g2.AddUri("ex:r");
    g2.AddTriple(w, r, u);
    g2.AddTriple(w, q, v);
    g2.AddTriple(u, p, g2.AddLiteral("a"));
    g2.AddTriple(u, p, g2.AddLiteral("c"));
    g2.AddTriple(v, p, g2.AddLiteral("ac"));
    g2.AddTriple(v, q, g2.AddLiteral("c"));
  }
  return {std::move(g1.Build(true)).value(),
          std::move(g2.Build(true)).value()};
}

TripleGraph RandomGraph(const RandomGraphOptions& options,
                        std::shared_ptr<Dictionary> dict) {
  Rng rng(options.seed);
  GraphBuilder b(std::move(dict));
  std::vector<NodeId> uris;
  std::vector<NodeId> literals;
  std::vector<NodeId> blanks;
  for (size_t i = 0; i < options.uris; ++i) {
    uris.push_back(b.AddUri("urn:n" + std::to_string(options.seed) + "-" +
                            std::to_string(i)));
  }
  for (size_t i = 0; i < options.literals; ++i) {
    literals.push_back(b.AddLiteral(gen::RandomSentence(rng, 1, 4)));
  }
  for (size_t i = 0; i < options.blanks; ++i) {
    blanks.push_back(b.AddBlank("rb" + std::to_string(i)));
  }
  const size_t num_predicates =
      std::min(options.predicates, uris.size() ? uris.size() : 1);
  auto subject = [&]() -> NodeId {
    uint64_t k = rng.Uniform(uris.size() + blanks.size());
    return k < uris.size() ? uris[k] : blanks[k - uris.size()];
  };
  auto object = [&]() -> NodeId {
    uint64_t k = rng.Uniform(uris.size() + blanks.size() + literals.size());
    if (k < uris.size()) return uris[k];
    k -= uris.size();
    if (k < blanks.size()) return blanks[k];
    return literals[k - blanks.size()];
  };
  for (size_t i = 0; i < options.edges; ++i) {
    b.AddTriple(subject(), uris[rng.Uniform(num_predicates)], object());
  }
  return std::move(b.Build(true)).value();
}

namespace {

/// One evolution step shared by RandomEvolvingPair and
/// RandomEvolvingChain: random triple deletions, URI renames, literal
/// typos, fresh blank names, and a few insertions tagged with
/// `insert_tag` so labels stay unique across chain steps.
TripleGraph EvolveVersion(const TripleGraph& g1,
                          const std::shared_ptr<Dictionary>& dict, Rng& rng,
                          uint64_t insert_tag, size_t edges_hint) {
  // Label maps: some URIs renamed, some literals edited; blanks always get
  // fresh local names.
  std::unordered_map<LexId, std::string> label_map;
  auto mapped = [&](const TripleGraph& g, NodeId n,
                    GraphBuilder& b) -> NodeId {
    switch (g.KindOf(n)) {
      case TermKind::kBlank:
        return b.AddBlank("v2-" + std::string(g.Lexical(n)));
      case TermKind::kUri: {
        auto it = label_map.find(g.LexicalId(n));
        if (it == label_map.end()) {
          std::string next =
              rng.Bernoulli(0.15)
                  ? std::string(g.Lexical(n)) + "-renamed"
                  : std::string(g.Lexical(n));
          it = label_map.emplace(g.LexicalId(n), std::move(next)).first;
        }
        return b.AddUri(it->second);
      }
      case TermKind::kLiteral: {
        auto it = label_map.find(g.LexicalId(n));
        if (it == label_map.end()) {
          std::string next = std::string(g.Lexical(n));
          if (rng.Bernoulli(0.2)) next = gen::ApplyTypo(next, rng);
          it = label_map.emplace(g.LexicalId(n), std::move(next)).first;
        }
        return b.AddLiteral(it->second);
      }
    }
    return kInvalidNode;
  };

  GraphBuilder b(dict);
  for (const Triple& t : g1.triples()) {
    if (rng.Bernoulli(0.06)) continue;  // deletion
    NodeId s = mapped(g1, t.s, b);
    NodeId p = mapped(g1, t.p, b);
    NodeId o = mapped(g1, t.o, b);
    b.AddTriple(s, p, o);
  }
  // A few insertions.
  const size_t inserts = 1 + edges_hint / 20;
  for (size_t i = 0; i < inserts; ++i) {
    NodeId s = b.AddUri("urn:new" + std::to_string(insert_tag) + "-" +
                        std::to_string(i));
    NodeId p = b.AddUri("urn:np" + std::to_string(i % 3));
    NodeId o = b.AddLiteral(gen::RandomSentence(rng, 1, 3));
    b.AddTriple(s, p, o);
  }
  return std::move(b.Build(true)).value();
}

}  // namespace

std::pair<TripleGraph, TripleGraph> RandomEvolvingPair(
    uint64_t seed, const RandomGraphOptions& base_options) {
  RandomGraphOptions options = base_options;
  options.seed = seed;
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g1 = RandomGraph(options, dict);
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  TripleGraph g2 = EvolveVersion(g1, dict, rng, seed, options.edges);
  return {std::move(g1), std::move(g2)};
}

std::vector<TripleGraph> RandomEvolvingChain(
    uint64_t seed, size_t versions, const RandomGraphOptions& base_options) {
  RandomGraphOptions options = base_options;
  options.seed = seed;
  auto dict = std::make_shared<Dictionary>();
  std::vector<TripleGraph> chain;
  chain.reserve(versions);
  if (versions == 0) return chain;
  chain.push_back(RandomGraph(options, dict));
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 2);
  for (size_t v = 1; v < versions; ++v) {
    chain.push_back(EvolveVersion(chain.back(), dict, rng,
                                  seed * 1000 + v, options.edges));
  }
  return chain;
}

CombinedGraph Combine(const TripleGraph& g1, const TripleGraph& g2) {
  auto result = CombinedGraph::Build(g1, g2);
  if (!result.ok()) {
    std::fprintf(stderr, "Combine failed: %s\n",
                 result.status().ToString().c_str());
    std::abort();
  }
  return std::move(result).value();
}

}  // namespace rdfalign::testing
