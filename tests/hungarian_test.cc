#include "core/hungarian.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <numeric>
#include <vector>

#include "util/random.h"

namespace rdfalign {
namespace {

double BruteForceAssignment(const std::vector<double>& cost, size_t n) {
  std::vector<size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0;
    for (size_t i = 0; i < n; ++i) total += cost[i * n + perm[i]];
    best = std::min(best, total);
  } while (std::next_permutation(perm.begin(), perm.end()));
  return best;
}

TEST(HungarianTest, TrivialSizes) {
  EXPECT_EQ(SolveAssignment({}, 0).cost, 0.0);
  AssignmentResult r = SolveAssignment({3.5}, 1);
  EXPECT_DOUBLE_EQ(r.cost, 3.5);
  EXPECT_EQ(r.row_of_col[0], 0u);
}

TEST(HungarianTest, PicksOffDiagonal) {
  // Diagonal costs 2+2, off-diagonal 1+1.
  std::vector<double> cost{2, 1,
                           1, 2};
  AssignmentResult r = SolveAssignment(cost, 2);
  EXPECT_DOUBLE_EQ(r.cost, 2.0);
  EXPECT_EQ(r.col_of_row[0], 1u);
  EXPECT_EQ(r.col_of_row[1], 0u);
}

TEST(HungarianTest, ClassicExample) {
  std::vector<double> cost{4, 1, 3,
                           2, 0, 5,
                           3, 2, 2};
  AssignmentResult r = SolveAssignment(cost, 3);
  EXPECT_DOUBLE_EQ(r.cost, 5.0);  // 1 + 2 + 2
}

TEST(HungarianTest, AssignmentIsAPermutation) {
  Rng rng(3);
  const size_t n = 8;
  std::vector<double> cost(n * n);
  for (double& c : cost) c = rng.UniformReal();
  AssignmentResult r = SolveAssignment(cost, n);
  std::vector<bool> row_used(n, false);
  std::vector<bool> col_used(n, false);
  double total = 0;
  for (size_t j = 0; j < n; ++j) {
    size_t i = r.row_of_col[j];
    ASSERT_LT(i, n);
    EXPECT_FALSE(row_used[i]);
    row_used[i] = true;
    EXPECT_EQ(r.col_of_row[i], j);
    total += cost[i * n + j];
  }
  for (size_t i = 0; i < n; ++i) {
    col_used[r.col_of_row[i]] = true;
  }
  EXPECT_TRUE(std::all_of(col_used.begin(), col_used.end(),
                          [](bool b) { return b; }));
  EXPECT_NEAR(r.cost, total, 1e-12);
}

class HungarianPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HungarianPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  for (size_t n = 1; n <= 6; ++n) {
    std::vector<double> cost(n * n);
    for (double& c : cost) c = rng.UniformReal() * 2 - 0.5;  // negatives too
    AssignmentResult r = SolveAssignment(cost, n);
    EXPECT_NEAR(r.cost, BruteForceAssignment(cost, n), 1e-9)
        << "n=" << n << " seed=" << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HungarianPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

TEST(RectangularTest, PadsWithGivenCost) {
  // 2 rows x 1 col, pad cost 1: one real match + one padded.
  std::vector<double> cost{0.2,
                           0.7};
  AssignmentResult r = SolveRectangularAssignment(cost, 2, 1, 1.0);
  EXPECT_DOUBLE_EQ(r.cost, 1.2);
}

TEST(RectangularTest, WideMatrix) {
  // 1 row x 3 cols: pick the cheapest column, two pads.
  std::vector<double> cost{0.9, 0.1, 0.5};
  AssignmentResult r = SolveRectangularAssignment(cost, 1, 3, 1.0);
  EXPECT_DOUBLE_EQ(r.cost, 0.1 + 2.0);
  EXPECT_EQ(r.col_of_row[0], 1u);
}

TEST(RectangularTest, SigmaEditShapeExample) {
  // Example 5's u/u2 matching as a matrix: 3 edges vs 2, costs 0 for the
  // two label-equal pairs, 1 elsewhere; pad 1. Optimal = 0+0+1.
  std::vector<double> cost{0, 1,
                           1, 0,
                           1, 1};
  AssignmentResult r = SolveRectangularAssignment(cost, 3, 2, 1.0);
  EXPECT_DOUBLE_EQ(r.cost, 1.0);
}

}  // namespace
}  // namespace rdfalign
