// End-to-end integration: generators -> alignment -> evaluation, the
// pipelines the benches run, at test scale.

#include <gtest/gtest.h>

#include "core/aligner.h"
#include "core/delta.h"
#include "gen/efo_gen.h"
#include "gen/gtopdb_gen.h"
#include "gen/ground_truth.h"
#include "parser/ntriples_parser.h"
#include "parser/ntriples_writer.h"
#include "test_util.h"

namespace rdfalign {
namespace {

TEST(IntegrationTest, EfoChainAlignmentQualityOrdering) {
  gen::EfoOptions options;
  options.initial_classes = 80;
  options.versions = 3;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  auto cg = testing::Combine(chain.Version(0), chain.Version(2));
  double prev_ratio = -1;
  for (AlignMethod m : {AlignMethod::kTrivial, AlignMethod::kDeblank,
                        AlignMethod::kHybrid, AlignMethod::kOverlap}) {
    AlignerOptions opt;
    opt.method = m;
    AlignmentOutcome out = Aligner(opt).AlignCombined(cg);
    EXPECT_GE(out.edge_stats.Ratio(), prev_ratio)
        << AlignMethodToString(m);
    prev_ratio = out.edge_stats.Ratio();
  }
  // Deblank must beat trivial substantially on blank-heavy data.
  AlignerOptions t{.method = AlignMethod::kTrivial};
  AlignerOptions d{.method = AlignMethod::kDeblank};
  double trivial = Aligner(t).AlignCombined(cg).edge_stats.Ratio();
  double deblank = Aligner(d).AlignCombined(cg).edge_stats.Ratio();
  EXPECT_GT(deblank, trivial + 0.05);
}

TEST(IntegrationTest, GtoPdbHybridVsOverlapPrecision) {
  gen::GtoPdbOptions options;
  options.num_ligands = 80;
  options.versions = 2;
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);
  auto dict = std::make_shared<Dictionary>();
  auto g1 = gen::ExportGtoPdbVersion(chain.versions[0], 0, dict);
  auto g2 = gen::ExportGtoPdbVersion(chain.versions[1], 1, dict);
  ASSERT_TRUE(g1.ok() && g2.ok());
  auto cg = testing::Combine(*g1, *g2);
  gen::GroundTruth gt = gen::RelationalGroundTruth(
      chain.versions[0], *g1, 0, chain.versions[1], *g2, 1);
  ASSERT_GT(gt.NumPairs(), 100u);

  AlignerOptions h{.method = AlignMethod::kHybrid};
  AlignmentOutcome hybrid = Aligner(h).AlignCombined(cg);
  gen::PrecisionStats hybrid_stats =
      gen::EvaluatePrecision(cg, hybrid.partition, gt);

  AlignerOptions o{.method = AlignMethod::kOverlap};
  AlignmentOutcome overlap = Aligner(o).AlignCombined(cg);
  gen::PrecisionStats overlap_stats =
      gen::EvaluatePrecision(cg, overlap.partition, gt);

  // The paper's headline (Fig. 14): overlap significantly outperforms
  // hybrid on the no-shared-URI relational export.
  EXPECT_GT(overlap_stats.exact, hybrid_stats.exact);
  EXPECT_LT(overlap_stats.missing, hybrid_stats.missing);
  // Overlap aligns most surviving entities exactly.
  EXPECT_GT(overlap_stats.ExactRate(), 0.5);
}

TEST(IntegrationTest, SerializationRoundTripPreservesAlignment) {
  // Generate -> write N-Triples -> parse back -> align: identical metrics.
  gen::EfoOptions options;
  options.initial_classes = 40;
  options.versions = 2;
  gen::EfoChain chain = gen::EfoChain::Generate(options);
  std::string text1 = NTriplesToString(chain.Version(0));
  std::string text2 = NTriplesToString(chain.Version(1));
  auto dict = std::make_shared<Dictionary>();
  auto g1 = ParseNTriplesString(text1, dict);
  auto g2 = ParseNTriplesString(text2, dict);
  ASSERT_TRUE(g1.ok() && g2.ok());
  EXPECT_EQ(g1->NumEdges(), chain.Version(0).NumEdges());

  AlignerOptions opt{.method = AlignMethod::kHybrid};
  auto direct = Aligner(opt)
                    .AlignCombined(testing::Combine(chain.Version(0),
                                                    chain.Version(1)));
  auto roundtrip =
      Aligner(opt).AlignCombined(testing::Combine(*g1, *g2));
  EXPECT_EQ(direct.edge_stats.aligned_edges,
            roundtrip.edge_stats.aligned_edges);
  EXPECT_EQ(direct.edge_stats.total_edges, roundtrip.edge_stats.total_edges);
}

TEST(IntegrationTest, DeterministicEndToEnd) {
  auto run = [] {
    gen::GtoPdbOptions options;
    options.num_ligands = 40;
    options.versions = 2;
    gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);
    auto dict = std::make_shared<Dictionary>();
    auto g1 = gen::ExportGtoPdbVersion(chain.versions[0], 0, dict);
    auto g2 = gen::ExportGtoPdbVersion(chain.versions[1], 1, dict);
    AlignerOptions o{.method = AlignMethod::kOverlap};
    auto cg = testing::Combine(*g1, *g2);
    AlignmentOutcome out = Aligner(o).AlignCombined(cg);
    return std::make_tuple(out.edge_stats.aligned_edges,
                           out.edge_stats.total_edges,
                           out.node_stats.aligned_classes);
  };
  EXPECT_EQ(run(), run());
}

TEST(IntegrationTest, DeltaOverGtoPdbVersions) {
  gen::GtoPdbOptions options;
  options.num_ligands = 40;
  options.versions = 2;
  gen::GtoPdbChain chain = gen::GenerateGtoPdbChain(options);
  auto dict = std::make_shared<Dictionary>();
  auto g1 = gen::ExportGtoPdbVersion(chain.versions[0], 0, dict);
  auto g2 = gen::ExportGtoPdbVersion(chain.versions[1], 1, dict);
  auto cg = testing::Combine(*g1, *g2);
  AlignerOptions o{.method = AlignMethod::kOverlap};
  AlignmentOutcome out = Aligner(o).AlignCombined(cg);
  RdfDelta delta = ComputeDelta(cg, out.partition);
  // Every row URI pair found by the alignment is a cross-prefix rename.
  EXPECT_GT(delta.renamed_uris.size(), 50u);
  EXPECT_GT(delta.unchanged, 0u);
}

}  // namespace
}  // namespace rdfalign
