// SnapshotCache coverage: LRU eviction order, byte-capacity accounting
// against LoadedGraphBytes, refcounted eviction under in-flight requests,
// content-fingerprint keying across distinct paths, and (in the
// *Parallel* suite, which runs in the CI TSan lane) concurrent hammering
// at {1,2,4,8} threads.

#include "service/snapshot_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rdf/graph.h"
#include "service/graph_source.h"
#include "store/delta.h"
#include "store/snapshot.h"
#include "test_util.h"

namespace rdfalign::service {
namespace {

std::string TestScratchDir() {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  // Parameterized test names contain '/'; keep the prefix a single path
  // component.
  std::string name = std::string(info->test_suite_name()) + "_" +
                     info->name();
  for (char& c : name) {
    if (c == '/') c = '_';
  }
  std::string dir = ::testing::TempDir() + "rdfalign_cache_" + name;
  std::remove(dir.c_str());
  return dir;
}

/// Writes a distinct random graph (seeded by `seed`) as a snapshot file
/// and returns its path.
std::string WriteGraphSnapshot(const std::string& dir, int seed,
                               size_t edges = 60) {
  rdfalign::testing::RandomGraphOptions opt;
  opt.edges = edges;
  opt.seed = static_cast<uint64_t>(seed);
  const TripleGraph g = rdfalign::testing::RandomGraph(opt);
  const std::string path = dir + "_v" + std::to_string(seed) + ".snap";
  Status st = store::WriteSnapshot(g, path);
  EXPECT_TRUE(st.ok()) << st.ToString();
  return path;
}

uint64_t BytesOf(const std::string& path) {
  DirectGraphSource direct;
  Result<AcquiredGraph> got = direct.Acquire(path, CommonOptions(), false);
  EXPECT_TRUE(got.ok()) << got.status().ToString();
  return got->loaded->resident_bytes;
}

TEST(SnapshotCacheTest, HitMissAndStats) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1);
  const std::string b = WriteGraphSnapshot(dir, 2);

  SnapshotCache cache;
  Result<AcquiredGraph> first = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_FALSE(first->cache_hit);
  EXPECT_TRUE(first->loaded->has_fingerprint);

  Result<AcquiredGraph> again = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(again->cache_hit);
  // A warm hit serves the very same resident graph object.
  EXPECT_EQ(again->loaded.get(), first->loaded.get());

  Result<AcquiredGraph> other = cache.Acquire(b, CommonOptions(), false);
  ASSERT_TRUE(other.ok());
  EXPECT_FALSE(other->cache_hit);

  const SnapshotCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.resident_bytes,
            first->loaded->resident_bytes + other->loaded->resident_bytes);

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SnapshotCacheTest, ByteAccountingMatchesLoadedGraphBytes) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1, 40);
  const std::string b = WriteGraphSnapshot(dir, 2, 80);

  SnapshotCache cache;
  ASSERT_TRUE(cache.Acquire(a, CommonOptions(), false).ok());
  ASSERT_TRUE(cache.Acquire(b, CommonOptions(), false).ok());

  // The cache's accounting unit is exactly LoadedGraphBytes of each
  // resident graph — recompute it from independent direct loads.
  EXPECT_EQ(cache.stats().resident_bytes, BytesOf(a) + BytesOf(b));
  const std::vector<SnapshotCacheEntryInfo> entries = cache.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, b);  // MRU first
  EXPECT_EQ(entries[1].path, a);
  EXPECT_EQ(entries[0].resident_bytes, BytesOf(b));
  EXPECT_EQ(entries[1].resident_bytes, BytesOf(a));

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SnapshotCacheTest, EvictsLeastRecentlyUsedFirst) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1);
  const std::string b = WriteGraphSnapshot(dir, 2);
  const std::string c = WriteGraphSnapshot(dir, 3);

  // Capacity for exactly the two largest graphs — any third forces an
  // eviction.
  SnapshotCacheOptions options;
  options.capacity_bytes = BytesOf(a) + BytesOf(b) + BytesOf(c) -
                           std::min({BytesOf(a), BytesOf(b), BytesOf(c)});
  SnapshotCache cache(options);

  ASSERT_TRUE(cache.Acquire(a, CommonOptions(), false).ok());
  ASSERT_TRUE(cache.Acquire(b, CommonOptions(), false).ok());
  // Touch a: LRU order is now [a (MRU), b (LRU)].
  ASSERT_TRUE(cache.Acquire(a, CommonOptions(), false).ok());
  // Loading c must evict b (the least recently used), not a.
  ASSERT_TRUE(cache.Acquire(c, CommonOptions(), false).ok());

  const std::vector<SnapshotCacheEntryInfo> entries = cache.entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].path, c);
  EXPECT_EQ(entries[1].path, a);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_LE(cache.stats().resident_bytes, options.capacity_bytes);

  // Re-acquiring b is a miss again; a stays resident until b's load
  // pushes the total back over capacity.
  Result<AcquiredGraph> again = cache.Acquire(b, CommonOptions(), false);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);

  std::remove(a.c_str());
  std::remove(b.c_str());
  std::remove(c.c_str());
}

TEST(SnapshotCacheTest, OversizedGraphServedButNotRetained) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1);

  SnapshotCacheOptions options;
  options.capacity_bytes = 1;  // nothing fits
  SnapshotCache cache(options);

  Result<AcquiredGraph> got = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(got.ok());
  EXPECT_GT(got->loaded->graph.NumEdges(), 0u);
  // The request still holds a usable graph; the cache retains nothing.
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);

  std::remove(a.c_str());
}

TEST(SnapshotCacheTest, EvictionNeverFreesAnInFlightGraph) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1);
  const std::string b = WriteGraphSnapshot(dir, 2);

  SnapshotCacheOptions options;
  options.capacity_bytes = std::max(BytesOf(a), BytesOf(b));
  SnapshotCache cache(options);

  // An "in-flight request": hold the ref while its entry is evicted.
  Result<AcquiredGraph> held = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(held.ok());
  const size_t held_edges = held->loaded->graph.NumEdges();
  {
    const std::vector<SnapshotCacheEntryInfo> entries = cache.entries();
    ASSERT_EQ(entries.size(), 1u);
    EXPECT_EQ(entries[0].external_refs, 1u);  // our ref, beyond the cache's
  }

  // Rebind the held graph into a request-local dictionary (the align/diff
  // path); the rebound views pin the entry too.
  auto dict = std::make_shared<Dictionary>();
  const TripleGraph rebound = RebindGraph(held->loaded, dict);

  ASSERT_TRUE(cache.Acquire(b, CommonOptions(), false).ok());  // evicts a
  EXPECT_EQ(cache.stats().evictions, 1u);
  ASSERT_EQ(cache.entries().size(), 1u);
  EXPECT_EQ(cache.entries()[0].path, b);

  // The evicted graph and its rebound view both stay fully usable.
  EXPECT_EQ(held->loaded->graph.NumEdges(), held_edges);
  EXPECT_EQ(rebound.NumEdges(), held_edges);
  for (NodeId n = 0; n < rebound.NumNodes(); ++n) {
    EXPECT_EQ(rebound.Lexical(n), held->loaded->graph.Lexical(n));
  }

  std::remove(a.c_str());
  std::remove(b.c_str());
}

TEST(SnapshotCacheTest, KeysByContentFingerprintAcrossPaths) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1);
  // Byte-identical copy under a different path: same content fingerprint.
  const std::string copy = dir + "_copy.snap";
  {
    std::ifstream in(a, std::ios::binary);
    std::ofstream out(copy, std::ios::binary);
    out << in.rdbuf();
  }

  SnapshotCache cache;
  Result<AcquiredGraph> first = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(first.ok());
  Result<AcquiredGraph> second = cache.Acquire(copy, CommonOptions(), false);
  ASSERT_TRUE(second.ok());

  // The second path misses (it has never been stat-validated) but adopts
  // the already-resident entry: one entry, same graph object, and the
  // duplicate load is accounted.
  EXPECT_EQ(second->loaded.get(), first->loaded.get());
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().duplicate_loads, 1u);

  // From now on both paths are warm.
  Result<AcquiredGraph> warm = cache.Acquire(copy, CommonOptions(), false);
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm->cache_hit);

  std::remove(a.c_str());
  std::remove(copy.c_str());
}

TEST(SnapshotCacheTest, ReplacedFileIsNeverServedStale) {
  const std::string dir = TestScratchDir();
  const std::string path = WriteGraphSnapshot(dir, 1, 40);
  SnapshotCache cache;
  Result<AcquiredGraph> before = cache.Acquire(path, CommonOptions(), false);
  ASSERT_TRUE(before.ok());
  const uint64_t fp_before = before->loaded->fingerprint;

  // Rebuild the file with different content (more edges -> different
  // size, so the stat validation fires even on coarse mtime clocks).
  rdfalign::testing::RandomGraphOptions opt;
  opt.edges = 90;
  opt.seed = 77;
  const TripleGraph g2 = rdfalign::testing::RandomGraph(opt);
  ASSERT_TRUE(store::WriteSnapshot(g2, path).ok());

  Result<AcquiredGraph> after = cache.Acquire(path, CommonOptions(), false);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->cache_hit);
  EXPECT_NE(after->loaded->fingerprint, fp_before);
  EXPECT_EQ(after->loaded->fingerprint, store::GraphFingerprint(g2));

  std::remove(path.c_str());
}

TEST(SnapshotCacheTest, ClearDropsEverythingButKeepsHeldRefs) {
  const std::string dir = TestScratchDir();
  const std::string a = WriteGraphSnapshot(dir, 1);
  SnapshotCache cache;
  Result<AcquiredGraph> held = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(held.ok());
  const size_t edges = held->loaded->graph.NumEdges();

  cache.Clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().resident_bytes, 0u);
  EXPECT_EQ(held->loaded->graph.NumEdges(), edges);  // still alive

  Result<AcquiredGraph> again = cache.Acquire(a, CommonOptions(), false);
  ASSERT_TRUE(again.ok());
  EXPECT_FALSE(again->cache_hit);

  std::remove(a.c_str());
}

// Runs in the TSan CI lane (filter *Parallel*): hammer one cache from
// {1,2,4,8} threads over a working set larger than capacity, so hits,
// misses, duplicate-load races, and evictions all interleave.
class SnapshotCacheParallelTest : public ::testing::TestWithParam<size_t> {};

TEST_P(SnapshotCacheParallelTest, ConcurrentHammeringStaysConsistent) {
  const size_t num_threads = GetParam();
  const std::string dir = TestScratchDir();
  constexpr int kGraphs = 4;
  std::vector<std::string> paths;
  std::vector<size_t> want_edges;
  uint64_t total_bytes = 0;
  for (int i = 0; i < kGraphs; ++i) {
    paths.push_back(WriteGraphSnapshot(dir, i + 1, 30 + 10 * i));
    DirectGraphSource direct;
    Result<AcquiredGraph> got =
        direct.Acquire(paths.back(), CommonOptions(), false);
    ASSERT_TRUE(got.ok());
    want_edges.push_back(got->loaded->graph.NumEdges());
    total_bytes += got->loaded->resident_bytes;
  }

  // Roughly half the working set fits -> constant eviction pressure.
  SnapshotCacheOptions options;
  options.capacity_bytes = total_bytes / 2;
  SnapshotCache cache(options);

  constexpr int kIterations = 40;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const size_t pick = (t + static_cast<size_t>(i)) % paths.size();
        Result<AcquiredGraph> got =
            cache.Acquire(paths[pick], CommonOptions(), false);
        if (!got.ok() ||
            got->loaded->graph.NumEdges() != want_edges[pick]) {
          failures.fetch_add(1);
          continue;
        }
        // Exercise the rebind path under eviction pressure too.
        auto dict = std::make_shared<Dictionary>();
        const TripleGraph rebound = RebindGraph(got->loaded, dict);
        if (rebound.NumEdges() != want_edges[pick]) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& th : threads) th.join();

  EXPECT_EQ(failures.load(), 0);
  const SnapshotCacheStats stats = cache.stats();
  // Every Acquire resolved to a hit or a miss; nothing was lost.
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<uint64_t>(num_threads) * kIterations);
  EXPECT_LE(stats.resident_bytes, options.capacity_bytes);
  EXPECT_EQ(stats.entries, cache.entries().size());

  for (const std::string& p : paths) std::remove(p.c_str());
}

INSTANTIATE_TEST_SUITE_P(Threads, SnapshotCacheParallelTest,
                         ::testing::Values(1u, 2u, 4u, 8u));

}  // namespace
}  // namespace rdfalign::service
