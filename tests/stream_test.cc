// Tests for the streaming alignment subsystem (docs/stream.md): update
// fragment encode/decode, the dirtiness edge cases of incremental
// partition maintenance, and the batch-equivalence contract — after any
// update sequence the live partition and the cumulative alignment deltas
// must match a from-scratch batch alignment of the final versions.

#include "stream/stream_aligner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "store/update_fragment.h"
#include "test_util.h"

namespace rdfalign::stream {
namespace {

using store::BuildUpdateBatch;
using store::DecodeUpdateBatch;
using store::EncodeUpdateBatch;
using store::UpdateBatch;

std::unique_ptr<StreamAligner> OpenOrDie(const TripleGraph& source,
                                         const TripleGraph& target,
                                         const StreamOptions& options = {}) {
  Result<std::unique_ptr<StreamAligner>> a =
      StreamAligner::Open(source, target, options);
  EXPECT_TRUE(a.ok()) << a.status().ToString();
  return std::move(a).value();
}

StreamBatchResult ApplyStep(StreamAligner* aligner, const TripleGraph& prev,
                            const TripleGraph& next, uint64_t seq) {
  Result<UpdateBatch> batch = BuildUpdateBatch(prev, next, seq);
  EXPECT_TRUE(batch.ok()) << batch.status().ToString();
  Result<StreamBatchResult> r = aligner->Apply(*batch);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return std::move(r).value();
}

void ExpectEquivalent(const StreamAligner& aligner, const TripleGraph& source,
                      const TripleGraph& final_target) {
  Result<StreamCheckResult> check =
      aligner.CheckBatchEquivalence(source, final_target);
  EXPECT_TRUE(check.ok()) << check.status().ToString();
}

// ------------------------------------------------------- update fragments

TEST(UpdateFragmentTest, RoundTripsThroughEncodeDecode) {
  auto [g1, g2] = testing::Fig3Graphs();
  Result<UpdateBatch> built = BuildUpdateBatch(g1, g2, 7);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  Result<std::string> bytes = EncodeUpdateBatch(*built);
  ASSERT_TRUE(bytes.ok()) << bytes.status().ToString();
  ASSERT_TRUE(store::LooksLikeUpdateFragment(*bytes));

  Result<UpdateBatch> decoded = DecodeUpdateBatch(*bytes, "test");
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->sequence, 7u);
  EXPECT_EQ(decoded->num_new, built->num_new);
  EXPECT_EQ(decoded->removed, built->removed);
  EXPECT_EQ(decoded->added, built->added);
  EXPECT_EQ(decoded->removed_nodes, built->removed_nodes);
  ASSERT_EQ(decoded->nodes.size(), built->nodes.size());
  for (size_t i = 0; i < decoded->nodes.size(); ++i) {
    EXPECT_EQ(decoded->nodes[i].kind, built->nodes[i].kind) << i;
    EXPECT_EQ(decoded->nodes[i].lex, built->nodes[i].lex) << i;
  }
}

TEST(UpdateFragmentTest, RoundTripsThroughFiles) {
  auto [g1, g2] = testing::Fig1Graphs();
  Result<UpdateBatch> built = BuildUpdateBatch(g1, g2, 1);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string path = ::testing::TempDir() + "rdfalign_stream_rt.upd";
  ASSERT_TRUE(store::WriteUpdateFile(*built, path).ok());
  Result<UpdateBatch> read = store::ReadUpdateFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read->added, built->added);
  EXPECT_EQ(read->removed, built->removed);
  std::remove(path.c_str());
}

TEST(UpdateFragmentTest, RejectsCorruptionAnywhere) {
  auto [g1, g2] = testing::Fig3Graphs();
  Result<UpdateBatch> built = BuildUpdateBatch(g1, g2, 1);
  ASSERT_TRUE(built.ok());
  Result<std::string> bytes = EncodeUpdateBatch(*built);
  ASSERT_TRUE(bytes.ok());

  // Truncation at any prefix must be rejected, never crash.
  for (size_t cut : {size_t{0}, size_t{5}, size_t{95}, bytes->size() - 1}) {
    EXPECT_FALSE(
        DecodeUpdateBatch(std::string_view(*bytes).substr(0, cut), "t").ok())
        << "cut=" << cut;
  }
  // A flipped byte trips a checksum (or the magic/geometry) — except in
  // the inter-section zero padding, which carries no content; there the
  // decode must still return the identical batch.
  for (size_t pos = 0; pos < bytes->size(); pos += 13) {
    std::string corrupt = *bytes;
    corrupt[pos] ^= 0x40;
    Result<UpdateBatch> d = DecodeUpdateBatch(corrupt, "t");
    if (!d.ok()) continue;
    EXPECT_EQ(d->added, built->added) << "pos=" << pos;
    EXPECT_EQ(d->removed, built->removed) << "pos=" << pos;
    EXPECT_EQ(d->removed_nodes, built->removed_nodes) << "pos=" << pos;
    EXPECT_EQ(d->num_new, built->num_new) << "pos=" << pos;
    ASSERT_EQ(d->nodes.size(), built->nodes.size()) << "pos=" << pos;
    for (size_t i = 0; i < d->nodes.size(); ++i) {
      EXPECT_EQ(d->nodes[i].lex, built->nodes[i].lex) << "pos=" << pos;
    }
  }
}

TEST(UpdateFragmentTest, ApplyRejectsUnresolvableReference) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);
  std::unique_ptr<StreamAligner> aligner = OpenOrDie(g, g);

  UpdateBatch batch;
  batch.nodes.push_back({TermKind::kUri, "ex:never-seen"});
  batch.nodes.push_back({TermKind::kUri, "ex:p"});
  batch.num_new = 0;  // claims ex:never-seen already exists — it does not
  batch.added.push_back(Triple{0, 1, 1});
  EXPECT_FALSE(aligner->Apply(batch).ok());
}

// --------------------------------------------- dirtiness edge cases

// Adding an isolated node whose label the source knows extends the
// alignment without waking the refinement engine at all.
TEST(StreamTest, IsolatedUriNodeAddSkipsRefinement) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);

  // Target = Fig2 minus every triple touching ex:u, minus ex:u itself;
  // the update re-creates ex:u as an isolated node.
  GraphBuilder without(dict);
  NodeId w = without.AddUri("ex:w");
  NodeId p = without.AddUri("ex:p");
  NodeId q = without.AddUri("ex:q");
  NodeId b1 = without.AddBlank("b1");
  NodeId b2 = without.AddBlank("b2");
  NodeId b3 = without.AddBlank("b3");
  NodeId la = without.AddLiteral("a");
  NodeId lb = without.AddLiteral("b");
  without.AddTriple(w, p, b1);
  without.AddTriple(w, p, lb);
  without.AddTriple(b1, q, b2);
  without.AddTriple(b2, q, la);
  without.AddTriple(b3, q, la);
  TripleGraph target = std::move(without.Build(true)).value();

  GraphBuilder with(dict);
  w = with.AddUri("ex:w");
  p = with.AddUri("ex:p");
  q = with.AddUri("ex:q");
  b1 = with.AddBlank("b1");
  b2 = with.AddBlank("b2");
  b3 = with.AddBlank("b3");
  la = with.AddLiteral("a");
  lb = with.AddLiteral("b");
  with.AddUri("ex:u");  // isolated: no triples touch it
  with.AddTriple(w, p, b1);
  with.AddTriple(w, p, lb);
  with.AddTriple(b1, q, b2);
  with.AddTriple(b2, q, la);
  with.AddTriple(b3, q, la);
  TripleGraph next = std::move(with.Build(true)).value();

  std::unique_ptr<StreamAligner> aligner = OpenOrDie(g, target);
  StreamBatchResult r = ApplyStep(aligner.get(), target, next, 1);
  EXPECT_EQ(r.new_nodes, 1u);
  EXPECT_FALSE(r.refined);  // no blank was created or re-signed
  ASSERT_EQ(r.added_pairs.size(), 1u);
  EXPECT_EQ(r.added_pairs[0].src_lex, "ex:u");
  EXPECT_EQ(r.added_pairs[0].tgt_lex, "ex:u");
  EXPECT_TRUE(r.removed_pairs.empty());
  ExpectEquivalent(*aligner, g, next);
}

// An isolated *blank* node add must refine: the fresh blank joins the
// blank reset region and can merge with (or split from) existing classes.
TEST(StreamTest, IsolatedBlankNodeAddRefines) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);

  GraphBuilder nb(dict);
  NodeId w = nb.AddUri("ex:w");
  NodeId u = nb.AddUri("ex:u");
  NodeId p = nb.AddUri("ex:p");
  NodeId q = nb.AddUri("ex:q");
  NodeId r = nb.AddUri("ex:r");
  NodeId b1 = nb.AddBlank("b1");
  NodeId b2 = nb.AddBlank("b2");
  NodeId b3 = nb.AddBlank("b3");
  NodeId la = nb.AddLiteral("a");
  NodeId lb = nb.AddLiteral("b");
  nb.AddBlank("b9");  // new isolated blank
  nb.AddTriple(w, p, b1);
  nb.AddTriple(w, p, u);
  nb.AddTriple(w, p, lb);
  nb.AddTriple(b1, q, b2);
  nb.AddTriple(b1, r, u);
  nb.AddTriple(b2, q, la);
  nb.AddTriple(b3, q, la);
  nb.AddTriple(u, q, la);
  nb.AddTriple(u, q, lb);
  nb.AddTriple(u, r, w);
  TripleGraph next = std::move(nb.Build(true)).value();

  std::unique_ptr<StreamAligner> aligner = OpenOrDie(g, g);
  StreamBatchResult r1 = ApplyStep(aligner.get(), g, next, 1);
  EXPECT_EQ(r1.new_nodes, 1u);
  EXPECT_TRUE(r1.refined);
  ExpectEquivalent(*aligner, g, next);
}

// A blank self-loop add then remove: both directions refine, and after
// the remove the partition (and pair set) is back to the original.
TEST(StreamTest, BlankSelfLoopAddAndRemove) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);
  std::unique_ptr<StreamAligner> aligner = OpenOrDie(g, g);
  const std::vector<LabeledPair> original = aligner->CurrentPairs();

  UpdateBatch loop;
  loop.nodes.push_back({TermKind::kBlank, "b2"});
  loop.nodes.push_back({TermKind::kUri, "ex:r"});
  loop.added.push_back(Triple{0, 1, 0});  // (_:b2, ex:r, _:b2)
  loop.sequence = 1;
  Result<StreamBatchResult> add = aligner->Apply(loop);
  ASSERT_TRUE(add.ok()) << add.status().ToString();
  EXPECT_TRUE(add->refined);
  // b2 leaves the {b2, b3} class: pairs involving it change.
  EXPECT_FALSE(add->removed_pairs.empty());

  // Equivalence against Fig2 + the loop.
  GraphBuilder wb(dict);
  NodeId w = wb.AddUri("ex:w");
  NodeId u = wb.AddUri("ex:u");
  NodeId p = wb.AddUri("ex:p");
  NodeId q = wb.AddUri("ex:q");
  NodeId r = wb.AddUri("ex:r");
  NodeId b1 = wb.AddBlank("b1");
  NodeId b2 = wb.AddBlank("b2");
  NodeId b3 = wb.AddBlank("b3");
  NodeId la = wb.AddLiteral("a");
  NodeId lb = wb.AddLiteral("b");
  wb.AddTriple(w, p, b1);
  wb.AddTriple(w, p, u);
  wb.AddTriple(w, p, lb);
  wb.AddTriple(b1, q, b2);
  wb.AddTriple(b1, r, u);
  wb.AddTriple(b2, q, la);
  wb.AddTriple(b2, r, b2);
  wb.AddTriple(b3, q, la);
  wb.AddTriple(u, q, la);
  wb.AddTriple(u, q, lb);
  wb.AddTriple(u, r, w);
  TripleGraph looped = std::move(wb.Build(true)).value();
  ExpectEquivalent(*aligner, g, looped);

  UpdateBatch unloop;
  unloop.nodes = loop.nodes;
  unloop.removed.push_back(Triple{0, 1, 0});
  unloop.sequence = 2;
  Result<StreamBatchResult> rm = aligner->Apply(unloop);
  ASSERT_TRUE(rm.ok()) << rm.status().ToString();
  EXPECT_TRUE(rm->refined);
  EXPECT_EQ(aligner->CurrentPairs(), original);
  ExpectEquivalent(*aligner, g, g);
}

// Removing a blank node's last out-edge leaves it live and edge-free; it
// must still re-sign (its signature changed) and the partition must match
// the batch alignment of the shrunken graph.
TEST(StreamTest, LastEdgeRemovalKeepsNodeLiveAndEquivalent) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);
  std::unique_ptr<StreamAligner> aligner = OpenOrDie(g, g);

  UpdateBatch batch;
  batch.nodes.push_back({TermKind::kBlank, "b3"});
  batch.nodes.push_back({TermKind::kUri, "ex:q"});
  batch.nodes.push_back({TermKind::kLiteral, "a"});
  batch.removed.push_back(Triple{0, 1, 2});  // b3's only triple
  batch.sequence = 1;
  Result<StreamBatchResult> r = aligner->Apply(batch);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->refined);
  EXPECT_EQ(r->removed_nodes, 0u);  // edge-free is not dead

  GraphBuilder wb(dict);
  NodeId w = wb.AddUri("ex:w");
  NodeId u = wb.AddUri("ex:u");
  NodeId p = wb.AddUri("ex:p");
  NodeId q = wb.AddUri("ex:q");
  NodeId rr = wb.AddUri("ex:r");
  NodeId b1 = wb.AddBlank("b1");
  NodeId b2 = wb.AddBlank("b2");
  wb.AddBlank("b3");  // still present, now isolated
  NodeId la = wb.AddLiteral("a");
  NodeId lb = wb.AddLiteral("b");
  wb.AddTriple(w, p, b1);
  wb.AddTriple(w, p, u);
  wb.AddTriple(w, p, lb);
  wb.AddTriple(b1, q, b2);
  wb.AddTriple(b1, rr, u);
  wb.AddTriple(b2, q, la);
  wb.AddTriple(u, q, la);
  wb.AddTriple(u, q, lb);
  wb.AddTriple(u, rr, w);
  TripleGraph shrunk = std::move(wb.Build(true)).value();
  ExpectEquivalent(*aligner, g, shrunk);
}

// A batch that changes nothing — adds already present, removes already
// absent, and the empty batch — must not refine and must emit no delta.
TEST(StreamTest, NoOpUpdateEmitsNoDelta) {
  auto dict = std::make_shared<Dictionary>();
  TripleGraph g = testing::Fig2Graph(dict);
  std::unique_ptr<StreamAligner> aligner = OpenOrDie(g, g);
  const std::vector<LabeledPair> original = aligner->CurrentPairs();

  Result<UpdateBatch> empty = BuildUpdateBatch(g, g, 1);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->added.empty());
  EXPECT_TRUE(empty->removed.empty());
  Result<StreamBatchResult> r0 = aligner->Apply(*empty);
  ASSERT_TRUE(r0.ok()) << r0.status().ToString();
  EXPECT_FALSE(r0->refined);
  EXPECT_TRUE(r0->added_pairs.empty());
  EXPECT_TRUE(r0->removed_pairs.empty());

  UpdateBatch noop;
  noop.nodes.push_back({TermKind::kBlank, "b2"});
  noop.nodes.push_back({TermKind::kUri, "ex:q"});
  noop.nodes.push_back({TermKind::kUri, "ex:r"});
  noop.nodes.push_back({TermKind::kLiteral, "a"});
  noop.added.push_back(Triple{0, 1, 3});    // (_:b2, ex:q, "a") — present
  noop.removed.push_back(Triple{0, 2, 3});  // (_:b2, ex:r, "a") — absent
  noop.sequence = 2;
  Result<StreamBatchResult> r = aligner->Apply(noop);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->ignored_adds, 1u);
  EXPECT_EQ(r->applied_adds, 0u);
  EXPECT_EQ(r->ignored_removes, 1u);
  EXPECT_EQ(r->applied_removes, 0u);
  EXPECT_FALSE(r->refined);
  EXPECT_TRUE(r->added_pairs.empty());
  EXPECT_TRUE(r->removed_pairs.empty());
  EXPECT_EQ(aligner->CurrentPairs(), original);
  ExpectEquivalent(*aligner, g, g);
}

// --------------------------------------------- batch equivalence property

// The acceptance gate: over ≥20 random evolving chains, the stream session
// must stay bit-identical (after dense renumbering) to the batch aligner
// at EVERY intermediate version, and the cumulative delta stream must
// reproduce CurrentPairs exactly.
TEST(StreamTest, RandomEvolvingChainsMatchBatchAlignment) {
  constexpr int kChains = 24;
  constexpr size_t kVersions = 4;
  for (int seed = 0; seed < kChains; ++seed) {
    std::vector<TripleGraph> chain =
        testing::RandomEvolvingChain(static_cast<uint64_t>(seed), kVersions);
    ASSERT_EQ(chain.size(), kVersions);

    std::unique_ptr<StreamAligner> aligner = OpenOrDie(chain[0], chain[0]);
    std::set<LabeledPair> pairs;
    for (const LabeledPair& p : aligner->CurrentPairs()) pairs.insert(p);

    for (size_t v = 1; v < chain.size(); ++v) {
      StreamBatchResult r =
          ApplyStep(aligner.get(), chain[v - 1], chain[v], v);
      for (const LabeledPair& p : r.removed_pairs) {
        EXPECT_EQ(pairs.erase(p), 1u) << "seed " << seed << " v " << v;
      }
      for (const LabeledPair& p : r.added_pairs) {
        EXPECT_TRUE(pairs.insert(p).second) << "seed " << seed << " v " << v;
      }
      const std::vector<LabeledPair> current = aligner->CurrentPairs();
      EXPECT_TRUE(std::equal(pairs.begin(), pairs.end(), current.begin(),
                             current.end()))
          << "cumulative deltas diverged (seed " << seed << ", v " << v
          << ")";
      Result<StreamCheckResult> check =
          aligner->CheckBatchEquivalence(chain[0], chain[v]);
      EXPECT_TRUE(check.ok())
          << "seed " << seed << " v " << v << ": "
          << check.status().ToString();
    }
  }
}

TEST(StreamTest, TrivialMethodChainsMatchBatchAlignment) {
  StreamOptions options;
  options.method = AlignMethod::kTrivial;
  for (uint64_t seed = 100; seed < 106; ++seed) {
    std::vector<TripleGraph> chain = testing::RandomEvolvingChain(seed, 3);
    std::unique_ptr<StreamAligner> aligner =
        OpenOrDie(chain[0], chain[0], options);
    for (size_t v = 1; v < chain.size(); ++v) {
      ApplyStep(aligner.get(), chain[v - 1], chain[v], v);
      Result<StreamCheckResult> check =
          aligner->CheckBatchEquivalence(chain[0], chain[v]);
      EXPECT_TRUE(check.ok())
          << "seed " << seed << " v " << v << ": "
          << check.status().ToString();
    }
  }
}

// Thread count must not change anything the session reports — same pairs,
// same deltas, same class count at every step. (Also the TSan target: the
// sanitizer job runs *Stream* with threads > 1.)
TEST(StreamTest, ThreadCountIsBitIdentical) {
  for (uint64_t seed = 40; seed < 44; ++seed) {
    testing::RandomGraphOptions big;
    big.uris = 24;
    big.blanks = 16;
    big.edges = 90;
    std::vector<TripleGraph> chain =
        testing::RandomEvolvingChain(seed, 4, big);

    StreamOptions serial;
    serial.threads = 1;
    StreamOptions parallel;
    parallel.threads = 4;
    parallel.parallel_min_round = 1;  // force the pool on tiny rounds
    std::unique_ptr<StreamAligner> a = OpenOrDie(chain[0], chain[0], serial);
    std::unique_ptr<StreamAligner> b =
        OpenOrDie(chain[0], chain[0], parallel);
    EXPECT_EQ(a->CurrentPairs(), b->CurrentPairs());

    for (size_t v = 1; v < chain.size(); ++v) {
      StreamBatchResult ra = ApplyStep(a.get(), chain[v - 1], chain[v], v);
      StreamBatchResult rb = ApplyStep(b.get(), chain[v - 1], chain[v], v);
      EXPECT_EQ(ra.added_pairs, rb.added_pairs) << "seed " << seed;
      EXPECT_EQ(ra.removed_pairs, rb.removed_pairs) << "seed " << seed;
      EXPECT_EQ(a->CurrentPairs(), b->CurrentPairs()) << "seed " << seed;
    }
    EXPECT_EQ(a->NumColorsAllocated(), b->NumColorsAllocated());
  }
}

}  // namespace
}  // namespace rdfalign::stream
